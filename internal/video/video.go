// Package video models the dashcam recording pipeline: fixed-length
// (1-minute by default) segments written second by second, held in a
// ring of limited SD-card storage where the oldest segment is recorded
// over once the card fills (Section 2 of the paper).
//
// It substitutes deterministic, seeded synthetic bytes for real camera
// output. Everything ViewMap does with a video — per-second cascaded
// hashing, byte-size reporting in view digests, and validation of an
// uploaded file against its view profile — depends only on the byte
// stream, so a pseudorandom stream at a dashcam-realistic bitrate
// (50 MB per minute by default) exercises the same code paths.
package video

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// SegmentSeconds is the unit recording time: dashcams "continuously
// record in segments for a unit-time (1-min default)".
const SegmentSeconds = 60

// DefaultBytesPerSecond yields the paper's average of 50 MB per 1-min
// video.
const DefaultBytesPerSecond = 50 * 1000 * 1000 / SegmentSeconds

// Segment is one unit-time video file under construction or completed.
type Segment struct {
	// StartUnix is the first second covered by the segment, aligned to
	// a minute boundary ("recording new videos every minute on the
	// minute").
	StartUnix int64
	chunks    [][]byte // per-second recorded content u_i^{i-1}
	size      int64
}

// NewSegment starts an empty segment at the given minute-aligned time.
// It returns an error when startUnix is not aligned, because viewmap
// construction groups VPs by exact unit-time windows and misaligned
// segments would never join a viewmap.
func NewSegment(startUnix int64) (*Segment, error) {
	if startUnix%SegmentSeconds != 0 {
		return nil, fmt.Errorf("video: segment start %d not aligned to %d-second boundary", startUnix, SegmentSeconds)
	}
	return &Segment{StartUnix: startUnix}, nil
}

// AppendSecond records the content for the next second. It returns the
// second index i (1-based, matching the paper's u_i^{i-1} notation) or
// an error when the segment is already complete.
func (s *Segment) AppendSecond(chunk []byte) (int, error) {
	if len(s.chunks) >= SegmentSeconds {
		return 0, errors.New("video: segment already has 60 seconds")
	}
	cp := make([]byte, len(chunk))
	copy(cp, chunk)
	s.chunks = append(s.chunks, cp)
	s.size += int64(len(cp))
	return len(s.chunks), nil
}

// Seconds returns how many seconds have been recorded.
func (s *Segment) Seconds() int { return len(s.chunks) }

// Complete reports whether the segment holds a full minute.
func (s *Segment) Complete() bool { return len(s.chunks) == SegmentSeconds }

// Size returns the total bytes recorded so far.
func (s *Segment) Size() int64 { return s.size }

// SizeAt returns the cumulative byte size after i seconds (1-based),
// the F field of the i-th view digest.
func (s *Segment) SizeAt(i int) (int64, error) {
	if i < 1 || i > len(s.chunks) {
		return 0, fmt.Errorf("video: second %d out of recorded range 1..%d", i, len(s.chunks))
	}
	var total int64
	for j := 0; j < i; j++ {
		total += int64(len(s.chunks[j]))
	}
	return total, nil
}

// Chunk returns the content recorded during second i (1-based): the
// paper's u_i^{i-1}.
func (s *Segment) Chunk(i int) ([]byte, error) {
	if i < 1 || i > len(s.chunks) {
		return nil, fmt.Errorf("video: second %d out of recorded range 1..%d", i, len(s.chunks))
	}
	return s.chunks[i-1], nil
}

// Bytes concatenates the full recorded content. Only the solicitation
// path uses it — VPs never carry video bytes.
func (s *Segment) Bytes() []byte {
	out := make([]byte, 0, s.size)
	for _, c := range s.chunks {
		out = append(out, c...)
	}
	return out
}

// ChunkSource produces the camera content recorded during each second
// of a segment. SyntheticSource is the default pseudorandom
// implementation; blur.CameraSource renders plate-bearing luminance
// frames so the evidence-release path exercises real redaction.
type ChunkSource interface {
	// SecondChunk returns the content recorded during second i
	// (1-based) of the segment starting at startUnix.
	SecondChunk(startUnix int64, i int) []byte
}

// SyntheticSource produces deterministic pseudorandom camera output,
// keyed by a seed so tests and simulations can reproduce exact streams.
// It is NOT a cryptographic source; it only needs to be deterministic
// and high-entropy enough that distinct videos produce distinct hashes.
type SyntheticSource struct {
	seed           [32]byte
	BytesPerSecond int
}

// NewSyntheticSource creates a source from a seed string.
func NewSyntheticSource(seed string, bytesPerSecond int) (*SyntheticSource, error) {
	if bytesPerSecond <= 0 {
		return nil, fmt.Errorf("video: bytes per second must be positive, got %d", bytesPerSecond)
	}
	return &SyntheticSource{seed: sha256.Sum256([]byte(seed)), BytesPerSecond: bytesPerSecond}, nil
}

// SecondChunk returns the synthetic content for second i (1-based) of
// the segment starting at startUnix. The stream is generated in
// SHA-256-sized blocks of a counter-mode construction.
func (s *SyntheticSource) SecondChunk(startUnix int64, i int) []byte {
	out := make([]byte, s.BytesPerSecond)
	var block [32 + 8 + 8 + 8]byte
	copy(block[:32], s.seed[:])
	binary.BigEndian.PutUint64(block[32:40], uint64(startUnix))
	binary.BigEndian.PutUint64(block[40:48], uint64(i))
	for off, ctr := 0, uint64(0); off < len(out); off, ctr = off+32, ctr+1 {
		binary.BigEndian.PutUint64(block[48:56], ctr)
		h := sha256.Sum256(block[:])
		copy(out[off:], h[:])
	}
	return out
}

// RecordSegment produces a complete 60-second segment from the source.
func (s *SyntheticSource) RecordSegment(startUnix int64) (*Segment, error) {
	seg, err := NewSegment(startUnix)
	if err != nil {
		return nil, err
	}
	for i := 1; i <= SegmentSeconds; i++ {
		if _, err := seg.AppendSecond(s.SecondChunk(startUnix, i)); err != nil {
			return nil, err
		}
	}
	return seg, nil
}

// Storage is the dashcam's SD card: a byte-budgeted ring of completed
// segments. When capacity would be exceeded, the oldest segments are
// deleted and recorded over, exactly as Section 2 describes.
type Storage struct {
	capacity int64
	used     int64
	segments []*Segment // oldest first
}

// NewStorage creates a card with the given byte capacity.
func NewStorage(capacityBytes int64) (*Storage, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("video: capacity must be positive, got %d", capacityBytes)
	}
	return &Storage{capacity: capacityBytes}, nil
}

// Store adds a completed segment, evicting the oldest segments as
// needed. It returns the segments that were recorded over, and an error
// if the segment alone exceeds the whole card.
func (st *Storage) Store(seg *Segment) (evicted []*Segment, err error) {
	if !seg.Complete() {
		return nil, errors.New("video: only completed segments are stored")
	}
	if seg.Size() > st.capacity {
		return nil, fmt.Errorf("video: segment of %d bytes exceeds card capacity %d", seg.Size(), st.capacity)
	}
	for st.used+seg.Size() > st.capacity {
		old := st.segments[0]
		st.segments = st.segments[1:]
		st.used -= old.Size()
		evicted = append(evicted, old)
	}
	st.segments = append(st.segments, seg)
	st.used += seg.Size()
	return evicted, nil
}

// Find returns the stored segment starting at startUnix, or nil.
func (st *Storage) Find(startUnix int64) *Segment {
	for _, s := range st.segments {
		if s.StartUnix == startUnix {
			return s
		}
	}
	return nil
}

// Len returns the number of stored segments.
func (st *Storage) Len() int { return len(st.segments) }

// Used returns the bytes currently occupied.
func (st *Storage) Used() int64 { return st.used }
