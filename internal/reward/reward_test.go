package reward

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"math/big"
	"sync"
	"testing"
)

// testBank caches one RSA key across tests; key generation dominates
// test time otherwise.
var (
	bankOnce sync.Once
	bankKey  *rsa.PrivateKey
)

func testBank(t testing.TB) *Bank {
	t.Helper()
	bankOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			t.Fatal(err)
		}
		bankKey = k
	})
	return NewBankFromKey(bankKey)
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(512); err == nil {
		t.Error("tiny keys should be rejected")
	}
}

func TestWithdrawVerifyRedeem(t *testing.T) {
	bank := testBank(t)
	units, err := Withdraw(bank, 3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3 {
		t.Fatalf("got %d units, want 3", len(units))
	}
	for i, c := range units {
		if !c.Verify(bank.PublicKey()) {
			t.Errorf("unit %d fails verification", i)
		}
		if err := bank.Redeem(c); err != nil {
			t.Errorf("unit %d fails redemption: %v", i, err)
		}
	}
	if bank.SpentCount() != 3 {
		t.Errorf("SpentCount = %d, want 3", bank.SpentCount())
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	bank := testBank(t)
	units, err := Withdraw(bank, 1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Redeem(units[0]); err != nil {
		t.Fatal(err)
	}
	if err := bank.Redeem(units[0]); err != ErrDoubleSpend {
		t.Errorf("second redemption = %v, want ErrDoubleSpend", err)
	}
}

func TestForgedCashRejected(t *testing.T) {
	bank := testBank(t)
	forged := &Cash{M: []byte("free money"), Sig: big.NewInt(12345)}
	if forged.Verify(bank.PublicKey()) {
		t.Error("forged cash must not verify")
	}
	if err := bank.Redeem(forged); err != ErrBadSignature {
		t.Errorf("Redeem(forged) = %v, want ErrBadSignature", err)
	}
}

func TestTamperedCashRejected(t *testing.T) {
	bank := testBank(t)
	units, err := Withdraw(bank, 1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tampered := &Cash{M: append([]byte(nil), units[0].M...), Sig: new(big.Int).Set(units[0].Sig)}
	tampered.M[0] ^= 1
	if tampered.Verify(bank.PublicKey()) {
		t.Error("tampered message must not verify")
	}
	tampered2 := &Cash{M: units[0].M, Sig: new(big.Int).Add(units[0].Sig, big.NewInt(1))}
	if tampered2.Verify(bank.PublicKey()) {
		t.Error("tampered signature must not verify")
	}
}

func TestCashVerifyNilSafety(t *testing.T) {
	bank := testBank(t)
	var c *Cash
	if c.Verify(bank.PublicKey()) {
		t.Error("nil cash must not verify")
	}
	if (&Cash{}).Verify(bank.PublicKey()) {
		t.Error("empty cash must not verify")
	}
}

func TestBlindingHidesMessage(t *testing.T) {
	// Two blindings of the same message are different group elements:
	// the bank cannot even tell that two withdrawals hide the same m.
	bank := testBank(t)
	pub := bank.PublicKey()
	n1, err := NewNote(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	n2 := &Note{m: n1.m} // same message, fresh blinding
	r2, err := randomUnit(pub.N, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	n2.r = r2
	b1, b2 := n1.Blind(pub), n2.Blind(pub)
	if b1.Cmp(b2) == 0 {
		t.Error("distinct blinding factors must produce distinct blinded messages")
	}
}

func TestUnblindedSignatureUnlinkable(t *testing.T) {
	// The value the bank signs differs from the value that circulates:
	// the bank's view (blinded) and the public view (unblinded) share
	// no common element.
	bank := testBank(t)
	pub := bank.PublicKey()
	note, err := NewNote(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	blinded := note.Blind(pub)
	sig, err := bank.SignBlinded(blinded)
	if err != nil {
		t.Fatal(err)
	}
	cash, err := note.Unblind(pub, sig)
	if err != nil {
		t.Fatal(err)
	}
	if cash.Sig.Cmp(sig) == 0 {
		t.Error("circulating signature must differ from the blind signature the bank saw")
	}
	if !cash.Verify(pub) {
		t.Error("unblinded cash must verify")
	}
}

func TestSignBlindedRange(t *testing.T) {
	bank := testBank(t)
	if _, err := bank.SignBlinded(nil); err == nil {
		t.Error("nil blinded message should fail")
	}
	if _, err := bank.SignBlinded(big.NewInt(-5)); err == nil {
		t.Error("negative blinded message should fail")
	}
	tooBig := new(big.Int).Add(bank.PublicKey().N, big.NewInt(1))
	if _, err := bank.SignBlinded(tooBig); err == nil {
		t.Error("out-of-range blinded message should fail")
	}
}

func TestWithdrawValidation(t *testing.T) {
	bank := testBank(t)
	if _, err := Withdraw(bank, 0, rand.Reader); err == nil {
		t.Error("zero units should fail")
	}
}

func TestCrossBankCashRejected(t *testing.T) {
	bank := testBank(t)
	otherKey, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	other := NewBankFromKey(otherKey)
	units, err := Withdraw(other, 1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Verify(bank.PublicKey()) {
		t.Error("cash from another bank must not verify")
	}
}

func BenchmarkWithdrawOneUnit(b *testing.B) {
	bank := testBank(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Withdraw(bank, 1, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCash(b *testing.B) {
	bank := testBank(b)
	units, err := Withdraw(bank, 1, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !units[0].Verify(bank.PublicKey()) {
			b.Fatal("verification failed")
		}
	}
}

func TestBankSaveLoadRoundTrip(t *testing.T) {
	bank := testBank(t)
	units, err := Withdraw(bank, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Redeem(units[0]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := bank.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	restarted, err := NewBank(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The keypair survived: units minted before the restart verify
	// against the restored public key.
	if restarted.PublicKey().N.Cmp(bank.PublicKey().N) != 0 {
		t.Fatal("restored bank has a different modulus")
	}
	if !units[1].Verify(restarted.PublicKey()) {
		t.Fatal("pre-restart unit must verify against the restored key")
	}

	// The ledger survived: the unit spent before the restart is still
	// spent, the unspent one still redeems exactly once.
	if err := restarted.Redeem(units[0]); err != ErrDoubleSpend {
		t.Fatalf("double spend across restart: got %v, want ErrDoubleSpend", err)
	}
	if err := restarted.Redeem(units[1]); err != nil {
		t.Fatalf("redeeming the unspent unit: %v", err)
	}
	if err := restarted.Redeem(units[1]); err != ErrDoubleSpend {
		t.Fatalf("second redemption: got %v, want ErrDoubleSpend", err)
	}
	if restarted.SpentCount() != 2 {
		t.Fatalf("spent count = %d, want 2", restarted.SpentCount())
	}
}

func TestBankLoadRejectsGarbage(t *testing.T) {
	bank := testBank(t)
	if err := bank.LoadFrom(bytes.NewReader([]byte("not a bank file at all"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	// A failed load must not clobber the live bank.
	if _, err := Withdraw(bank, 1, rand.Reader); err != nil {
		t.Fatalf("bank unusable after rejected load: %v", err)
	}
}
