// Package reward implements ViewMap's untraceable rewarding (Section
// 5.3 and Appendix A): virtual cash minted with Chaum blind signatures
// so the system can pay a video's anonymous owner without being able
// to link the cash back to the video.
//
// Protocol, in the paper's notation:
//
//	A -> S : VP_u, Q_u                    (ownership proof, R_u = H(Q_u))
//	S -> A : n                            (cash units granted)
//	A -> S : B(H(m_1),r_1)...B(H(m_n),r_n)  (blinded random messages)
//	S -> A : {B(H(m_i),r_i)}_{K_S^-}      (blind RSA signatures)
//	A      : unblind with r_i -> ({H(m_i)}_{K_S^-}, m_i)  = one unit
//
// Anyone can verify a unit against the system's public key; the system
// keeps a double-spending ledger over the revealed messages. Without
// the blinding secrets r_i — known only to A — the system cannot
// connect a redeemed unit to the blinded message it once signed.
//
// The blind-RSA arithmetic is implemented directly over math/big:
// blind(m) = H(m) * r^e mod N, sign(x) = x^d mod N, and unblinding
// divides out r. This is textbook RSA (no OAEP/PSS padding) — blind
// signatures require the raw homomorphism, which is exactly why Chaum
// cash uses it.
package reward

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// MessageBytes is the size of the random cash message m.
const MessageBytes = 32

// ErrDoubleSpend is returned when a unit of cash is redeemed twice.
var ErrDoubleSpend = errors.New("reward: cash already spent")

// ErrBadSignature is returned when a unit fails signature verification.
var ErrBadSignature = errors.New("reward: invalid signature")

// hashToInt maps a message into Z_N via SHA-256.
func hashToInt(m []byte, n *big.Int) *big.Int {
	sum := sha256.Sum256(m)
	return new(big.Int).Mod(new(big.Int).SetBytes(sum[:]), n)
}

// Cash is one unit of virtual money: the revealed random message and
// the unblinded signature over its hash.
type Cash struct {
	M   []byte
	Sig *big.Int
}

// Verify checks the unit against the issuing system's public key:
// Sig^e mod N == H(M).
func (c *Cash) Verify(pub *rsa.PublicKey) bool {
	if c == nil || c.Sig == nil || len(c.M) == 0 {
		return false
	}
	lhs := new(big.Int).Exp(c.Sig, big.NewInt(int64(pub.E)), pub.N)
	return lhs.Cmp(hashToInt(c.M, pub.N)) == 0
}

// Note is the client-side state for one pending unit: the secret
// message and the blinding factor r, which never leave the client.
type Note struct {
	m []byte
	r *big.Int
}

// NewNote draws a fresh random message and blinding secret for the
// given bank key.
func NewNote(pub *rsa.PublicKey, random io.Reader) (*Note, error) {
	m := make([]byte, MessageBytes)
	if _, err := io.ReadFull(random, m); err != nil {
		return nil, fmt.Errorf("reward: drawing message: %w", err)
	}
	r, err := randomUnit(pub.N, random)
	if err != nil {
		return nil, err
	}
	return &Note{m: m, r: r}, nil
}

// randomUnit draws r in [2, N) with gcd(r, N) = 1.
func randomUnit(n *big.Int, random io.Reader) (*big.Int, error) {
	one := big.NewInt(1)
	for {
		r, err := rand.Int(random, n)
		if err != nil {
			return nil, fmt.Errorf("reward: drawing blinding factor: %w", err)
		}
		if r.Cmp(one) <= 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Blind produces B(H(m), r) = H(m) * r^e mod N, the value sent to the
// bank for signing.
func (n *Note) Blind(pub *rsa.PublicKey) *big.Int {
	h := hashToInt(n.m, pub.N)
	re := new(big.Int).Exp(n.r, big.NewInt(int64(pub.E)), pub.N)
	return h.Mul(h, re).Mod(h, pub.N)
}

// Unblind divides the bank's blind signature by r, yielding the
// spendable unit: sig = blindSig * r^{-1} mod N = H(m)^d mod N.
func (n *Note) Unblind(pub *rsa.PublicKey, blindSig *big.Int) (*Cash, error) {
	rInv := new(big.Int).ModInverse(n.r, pub.N)
	if rInv == nil {
		return nil, errors.New("reward: blinding factor not invertible")
	}
	sig := new(big.Int).Mul(blindSig, rInv)
	sig.Mod(sig, pub.N)
	c := &Cash{M: append([]byte(nil), n.m...), Sig: sig}
	if !c.Verify(pub) {
		return nil, ErrBadSignature
	}
	return c, nil
}

// Bank is the system-side signer and double-spending ledger.
type Bank struct {
	// mu guards both the keypair (replaced wholesale by LoadFrom) and
	// the spent ledger.
	mu    sync.Mutex
	key   *rsa.PrivateKey
	spent map[[32]byte]bool
}

// signingKey returns the current keypair under the lock; the key
// itself is immutable once published, so callers may use it lock-free.
func (b *Bank) signingKey() *rsa.PrivateKey {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.key
}

// NewBank generates a bank with a fresh RSA key of the given size
// (>= 1024 bits; 2048 recommended).
func NewBank(bits int) (*Bank, error) {
	if bits < 1024 {
		return nil, fmt.Errorf("reward: key size %d too small", bits)
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("reward: generating key: %w", err)
	}
	return &Bank{key: key, spent: make(map[[32]byte]bool)}, nil
}

// NewBankFromKey wraps an existing key (tests, persistent deployments).
func NewBankFromKey(key *rsa.PrivateKey) *Bank {
	return &Bank{key: key, spent: make(map[[32]byte]bool)}
}

// PublicKey returns the verification key.
func (b *Bank) PublicKey() *rsa.PublicKey { return &b.signingKey().PublicKey }

// SignBlinded signs a blinded message with the bank's private key. The
// bank learns nothing about the underlying message. Values outside
// [0, N) are rejected.
func (b *Bank) SignBlinded(blinded *big.Int) (*big.Int, error) {
	key := b.signingKey()
	if blinded == nil || blinded.Sign() < 0 || blinded.Cmp(key.N) >= 0 {
		return nil, errors.New("reward: blinded message out of range")
	}
	return new(big.Int).Exp(blinded, key.D, key.N), nil
}

// Redeem verifies a unit and records it as spent. The second
// presentation of the same message returns ErrDoubleSpend.
func (b *Bank) Redeem(c *Cash) error {
	if !c.Verify(b.PublicKey()) {
		return ErrBadSignature
	}
	key := sha256.Sum256(c.M)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.spent[key] {
		return ErrDoubleSpend
	}
	b.spent[key] = true
	return nil
}

// SpentCount returns the number of redeemed units.
func (b *Bank) SpentCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spent)
}

// bankMagic heads a serialized bank so arbitrary files are rejected.
var bankMagic = [8]byte{'V', 'M', 'B', 'A', 'N', 'K', '0', '1'}

// SaveTo serializes the bank — the RSA signing keypair and the
// double-spend ledger — so both survive a system restart. Without
// this, a restarted system would either mint against a fresh key
// (orphaning every unit in circulation) or forget which units were
// already spent (re-admitting double spends). The format is the magic,
// the PKCS#1 DER key prefixed by its length, and the spent-message
// hashes.
func (b *Bank) SaveTo(w io.Writer) error {
	b.mu.Lock()
	key := b.key
	spent := make([][32]byte, 0, len(b.spent))
	for k := range b.spent {
		spent = append(spent, k)
	}
	b.mu.Unlock()
	if _, err := w.Write(bankMagic[:]); err != nil {
		return err
	}
	der := x509.MarshalPKCS1PrivateKey(key)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(der)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(spent)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(der); err != nil {
		return err
	}
	for _, k := range spent {
		if _, err := w.Write(k[:]); err != nil {
			return err
		}
	}
	return nil
}

// LoadFrom restores a bank serialized by SaveTo into this bank in
// place, replacing its keypair and ledger. In-place restoration keeps
// every handle to the bank (the system, the evidence subsystem) valid
// across a reload.
func (b *Bank) LoadFrom(r io.Reader) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("reward: reading bank header: %w", err)
	}
	if magic != bankMagic {
		return errors.New("reward: not a bank file")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	derLen := binary.BigEndian.Uint32(hdr[:4])
	spentLen := binary.BigEndian.Uint32(hdr[4:])
	if derLen > 1<<16 {
		return fmt.Errorf("reward: key of %d bytes implausible", derLen)
	}
	der := make([]byte, derLen)
	if _, err := io.ReadFull(r, der); err != nil {
		return err
	}
	key, err := x509.ParsePKCS1PrivateKey(der)
	if err != nil {
		return fmt.Errorf("reward: parsing bank key: %w", err)
	}
	// Cap the preallocation hint: spentLen comes from the file, and a
	// corrupt count must fail on the truncated read below rather than
	// drive a multi-gigabyte map allocation first.
	hint := spentLen
	if hint > 1<<20 {
		hint = 1 << 20
	}
	spent := make(map[[32]byte]bool, hint)
	for i := uint32(0); i < spentLen; i++ {
		var k [32]byte
		if _, err := io.ReadFull(r, k[:]); err != nil {
			return fmt.Errorf("reward: spent entry %d: %w", i, err)
		}
		spent[k] = true
	}
	b.mu.Lock()
	b.key = key
	b.spent = spent
	b.mu.Unlock()
	return nil
}

// Withdraw runs the full client side for n units against the bank:
// create notes, blind, obtain signatures, unblind. It exists as a
// convenience for in-process use; the HTTP protocol in internal/server
// performs the same steps across the wire.
func Withdraw(b *Bank, n int, random io.Reader) ([]*Cash, error) {
	if n <= 0 {
		return nil, fmt.Errorf("reward: unit count must be positive, got %d", n)
	}
	out := make([]*Cash, 0, n)
	for i := 0; i < n; i++ {
		note, err := NewNote(b.PublicKey(), random)
		if err != nil {
			return nil, err
		}
		sig, err := b.SignBlinded(note.Blind(b.PublicKey()))
		if err != nil {
			return nil, err
		}
		cash, err := note.Unblind(b.PublicKey(), sig)
		if err != nil {
			return nil, err
		}
		out = append(out, cash)
	}
	return out, nil
}
