package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, 2)
	if got := p.Add(q); got != Pt(4, 6) {
		t.Errorf("Add = %v, want (4,6)", got)
	}
	if got := p.Sub(q); got != Pt(2, 2) {
		t.Errorf("Sub = %v, want (2,2)", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v, want (6,8)", got)
	}
	if got := p.Dot(q); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := p.Cross(q); got != 2 {
		t.Errorf("Cross = %v, want 2", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(-1, -1).Dist(Pt(-1, -1)); d != 0 {
		t.Errorf("Dist same point = %v, want 0", d)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestSegmentLengthAndMidpoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(6, 8))
	if s.Length() != 10 {
		t.Errorf("Length = %v, want 10", s.Length())
	}
	if s.Midpoint() != Pt(3, 4) {
		t.Errorf("Midpoint = %v, want (3,4)", s.Midpoint())
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing", Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true},
		{"parallel", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false},
		{"touching endpoint", Seg(Pt(0, 0), Pt(5, 5)), Seg(Pt(5, 5), Pt(10, 0)), true},
		{"collinear overlap", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(15, 0)), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 0), Pt(9, 0)), false},
		{"T junction", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, -5), Pt(5, 0)), true},
		{"near miss", Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0.001), Pt(5, 5)), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Intersects(tc.u); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			// Intersection is symmetric.
			if got := tc.u.Intersects(tc.s); got != tc.want {
				t.Errorf("reverse Intersects = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if d := s.DistToPoint(Pt(5, 3)); d != 3 {
		t.Errorf("perpendicular dist = %v, want 3", d)
	}
	if d := s.DistToPoint(Pt(-3, 4)); d != 5 {
		t.Errorf("beyond endpoint dist = %v, want 5", d)
	}
	zero := Seg(Pt(1, 1), Pt(1, 1))
	if d := zero.DistToPoint(Pt(4, 5)); d != 5 {
		t.Errorf("degenerate segment dist = %v, want 5", d)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(10, 20), Pt(0, 0))
	if r.Min != Pt(0, 0) || r.Max != Pt(10, 20) {
		t.Fatalf("NewRect normalization failed: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 20 {
		t.Errorf("Width/Height = %v/%v, want 10/20", r.Width(), r.Height())
	}
	if r.Center() != Pt(5, 10) {
		t.Errorf("Center = %v, want (5,10)", r.Center())
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 20)) || !r.Contains(Pt(5, 5)) {
		t.Error("Contains should include boundary and interior")
	}
	if r.Contains(Pt(11, 5)) {
		t.Error("Contains should exclude outside points")
	}
	if r.ContainsStrict(Pt(0, 0)) {
		t.Error("ContainsStrict should exclude boundary")
	}
	if !r.ContainsStrict(Pt(5, 5)) {
		t.Error("ContainsStrict should include interior")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Pt(5, 5), 2)
	if r.Min != Pt(3, 3) || r.Max != Pt(7, 7) {
		t.Errorf("RectAround = %+v", r)
	}
}

func TestRectInflate(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(10, 10)).Inflate(5)
	if r.Min != Pt(-5, -5) || r.Max != Pt(15, 15) {
		t.Errorf("Inflate = %+v", r)
	}
}

func TestRectIntersectsSegment(t *testing.T) {
	r := NewRect(Pt(10, 10), Pt(20, 20))
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"through middle", Seg(Pt(0, 15), Pt(30, 15)), true},
		{"fully inside", Seg(Pt(12, 12), Pt(18, 18)), true},
		{"one endpoint inside", Seg(Pt(15, 15), Pt(40, 40)), true},
		{"misses entirely", Seg(Pt(0, 0), Pt(5, 30)), false},
		{"grazes left wall", Seg(Pt(10, 0), Pt(10, 30)), false},
		{"grazes corner", Seg(Pt(0, 20), Pt(20, 40)), false},
		{"diagonal through corner region", Seg(Pt(9, 9), Pt(21, 21)), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.IntersectsSegment(tc.s); got != tc.want {
				t.Errorf("IntersectsSegment = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBuildingBlocks(t *testing.T) {
	b := Building{Footprint: NewRect(Pt(40, 40), Pt(60, 60))}
	if !b.Blocks(Pt(0, 50), Pt(100, 50)) {
		t.Error("building should block sight line through it")
	}
	if b.Blocks(Pt(0, 0), Pt(100, 0)) {
		t.Error("building should not block sight line far from it")
	}
}

func TestObstacleSetLOS(t *testing.T) {
	os := NewObstacleSet(
		Building{Footprint: NewRect(Pt(40, 40), Pt(60, 60))},
		Building{Footprint: NewRect(Pt(80, 0), Pt(90, 30))},
	)
	if os.Len() != 2 {
		t.Fatalf("Len = %d, want 2", os.Len())
	}
	if os.LOS(Pt(0, 50), Pt(100, 50)) {
		t.Error("LOS should be blocked by first building")
	}
	if !os.LOS(Pt(0, 35), Pt(100, 35)) {
		t.Error("LOS should be clear between buildings")
	}
	if os.LOS(Pt(85, -10), Pt(85, 40)) {
		t.Error("LOS should be blocked by second building")
	}
}

func TestNilObstacleSetAlwaysLOS(t *testing.T) {
	var os *ObstacleSet
	if !os.LOS(Pt(0, 0), Pt(1, 1)) {
		t.Error("nil obstacle set must report clear LOS")
	}
}

func TestObstacleSetAdd(t *testing.T) {
	os := NewObstacleSet()
	os.Add(Building{Footprint: NewRect(Pt(0, 0), Pt(1, 1))})
	if os.Len() != 1 {
		t.Errorf("Len after Add = %d, want 1", os.Len())
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain magnitudes to avoid overflow-induced NaN comparisons.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a point constructed strictly inside a rectangle is contained.
func TestRectContainsProperty(t *testing.T) {
	f := func(x, y, w, h, fx, fy float64) bool {
		clamp01 := func(v float64) float64 {
			v = math.Abs(math.Mod(v, 1))
			if math.IsNaN(v) {
				return 0.5
			}
			return v
		}
		w = 1 + math.Abs(math.Mod(w, 100))
		h = 1 + math.Abs(math.Mod(h, 100))
		x = math.Mod(x, 1e4)
		y = math.Mod(y, 1e4)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		r := NewRect(Pt(x, y), Pt(x+w, y+h))
		p := Pt(x+clamp01(fx)*w, y+clamp01(fy)*h)
		return r.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: segment intersection is symmetric.
func TestIntersectsSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int16) bool {
		s := Seg(Pt(float64(ax), float64(ay)), Pt(float64(bx), float64(by)))
		u := Seg(Pt(float64(cx), float64(cy)), Pt(float64(dx), float64(dy)))
		return s.Intersects(u) == u.Intersects(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLOS(b *testing.B) {
	os := NewObstacleSet()
	for i := 0; i < 100; i++ {
		x := float64(i%10) * 100
		y := float64(i/10) * 100
		os.Add(Building{Footprint: NewRect(Pt(x+20, y+20), Pt(x+80, y+80))})
	}
	a, c := Pt(0, 0), Pt(1000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		os.LOS(a, c)
	}
}
