package geo

import (
	"math/rand"
	"sync"
	"testing"
)

func TestIndexedObstaclesMatchesLinearScan(t *testing.T) {
	// Random buildings; the index must agree with the plain set on
	// every random query.
	rng := rand.New(rand.NewSource(5))
	ix := NewIndexedObstacles(100)
	set := NewObstacleSet()
	for i := 0; i < 200; i++ {
		min := Pt(rng.Float64()*3000, rng.Float64()*3000)
		r := NewRect(min, min.Add(Pt(20+rng.Float64()*60, 20+rng.Float64()*60)))
		ix.AddBuilding(r)
		set.Add(Building{Footprint: r})
	}
	if ix.Len() != 200 {
		t.Fatalf("Len = %d, want 200", ix.Len())
	}
	for trial := 0; trial < 2000; trial++ {
		a := Pt(rng.Float64()*3000, rng.Float64()*3000)
		b := a.Add(Pt(rng.Float64()*800-400, rng.Float64()*800-400))
		if got, want := ix.LOS(a, b), set.LOS(a, b); got != want {
			t.Fatalf("LOS mismatch for %v-%v: index=%v scan=%v", a, b, got, want)
		}
	}
}

func TestIndexedObstaclesEmpty(t *testing.T) {
	ix := NewIndexedObstacles(100)
	if !ix.LOS(Pt(0, 0), Pt(100, 100)) {
		t.Error("empty index must report clear LOS")
	}
	var nilIx *IndexedObstacles
	if !nilIx.LOS(Pt(0, 0), Pt(1, 1)) {
		t.Error("nil index must report clear LOS")
	}
}

func TestIndexedObstaclesAsObstacle(t *testing.T) {
	ix := NewIndexedObstacles(100)
	ix.AddBuilding(NewRect(Pt(40, 40), Pt(60, 60)))
	set := ix.AsSet()
	if set.LOS(Pt(0, 50), Pt(100, 50)) {
		t.Error("wrapped index should block the sight line")
	}
	if !set.LOS(Pt(0, 0), Pt(100, 0)) {
		t.Error("wrapped index should pass clear lines")
	}
}

func TestIndexedObstaclesDefaultCell(t *testing.T) {
	ix := NewIndexedObstacles(0)
	ix.AddBuilding(NewRect(Pt(40, 40), Pt(60, 60)))
	if ix.LOS(Pt(0, 50), Pt(100, 50)) {
		t.Error("default cell size should still index correctly")
	}
}

// TestIndexedObstaclesConcurrentFirstQuery pins down the lazy grid
// build: many goroutines issue the very first LOS queries at once, so
// the build-and-publish must be properly synchronized. Run under -race
// in CI.
func TestIndexedObstaclesConcurrentFirstQuery(t *testing.T) {
	ix := NewIndexedObstacles(100)
	for i := 0; i < 50; i++ {
		min := Pt(float64(i%10)*100+20, float64(i/10)*100+20)
		ix.AddBuilding(NewRect(min, min.Add(Pt(60, 60))))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < 200; q++ {
				y := float64((g*200+q)%500) * 2
				ix.LOS(Pt(0, y), Pt(1000, y))
			}
		}(g)
	}
	wg.Wait()
	if ix.LOS(Pt(0, 50), Pt(1000, 50)) {
		t.Error("row through the building grid should be blocked")
	}
	if !ix.LOS(Pt(0, 0), Pt(1000, 0)) {
		t.Error("street row should be clear")
	}
}

func BenchmarkIndexedLOSCityScale(b *testing.B) {
	ix := NewIndexedObstacles(200)
	// 39x39 city blocks like the 8x8 km simulation.
	for cx := 0; cx < 39; cx++ {
		for cy := 0; cy < 39; cy++ {
			min := Pt(float64(cx)*200+20, float64(cy)*200+20)
			ix.AddBuilding(NewRect(min, min.Add(Pt(160, 160))))
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Pt(rng.Float64()*7800, rng.Float64()*7800)
		c := a.Add(Pt(rng.Float64()*800-400, rng.Float64()*800-400))
		ix.LOS(a, c)
	}
}

// BenchmarkIndexedLOSBlocked measures the obstructed case: sight lines
// straight through a dense block row, terminating at the first hit.
func BenchmarkIndexedLOSBlocked(b *testing.B) {
	ix := NewIndexedObstacles(200)
	for cx := 0; cx < 39; cx++ {
		for cy := 0; cy < 39; cy++ {
			min := Pt(float64(cx)*200+20, float64(cy)*200+20)
			ix.AddBuilding(NewRect(min, min.Add(Pt(160, 160))))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ix.LOS(Pt(0, 100), Pt(7800, 100)) {
			b.Fatal("line through the block row should be blocked")
		}
	}
}
