package geo

import "math"

// DefaultMaxGridCells caps a dense grid's cell count. A lone outlier
// rectangle can stretch the bounding hull arbitrarily; rather than
// allocate a proportional grid, construction coarsens the cell size
// until the grid fits (coarser cells only widen each query's candidate
// set, never losing members).
const DefaultMaxGridCells = 1 << 21

// CellGrid is a dense uniform grid over axis-aligned rectangles,
// stored CSR-style (flat offsets + ids) so construction and queries
// perform no map operations. Cell (cx,cy) in grid-local coordinates
// holds the ids of the rectangles overlapping it. Both the viewmap
// linker's candidate grid and the obstacle spatial index are built on
// it. Immutable once constructed; safe for concurrent queries.
type CellGrid struct {
	cell     float64
	gx0, gy0 int
	gw, gh   int
	start    []int32
	items    []int32
}

// NewCellGrid buckets the rectangles (ids are slice indices) into
// square cells of the given size, coarsened as needed to fit maxCells
// (<= 0 selects DefaultMaxGridCells). rects must be non-empty.
func NewCellGrid(rects []Rect, cell float64, maxCells int) *CellGrid {
	if maxCells <= 0 {
		maxCells = DefaultMaxGridCells
	}
	hull := rects[0]
	for _, r := range rects[1:] {
		hull.Min.X = math.Min(hull.Min.X, r.Min.X)
		hull.Min.Y = math.Min(hull.Min.Y, r.Min.Y)
		hull.Max.X = math.Max(hull.Max.X, r.Max.X)
		hull.Max.Y = math.Max(hull.Max.Y, r.Max.Y)
	}
	for {
		gw := int(math.Floor(hull.Max.X/cell)) - int(math.Floor(hull.Min.X/cell)) + 1
		gh := int(math.Floor(hull.Max.Y/cell)) - int(math.Floor(hull.Min.Y/cell)) + 1
		if float64(gw)*float64(gh) <= float64(maxCells) {
			break
		}
		cell *= 2
	}
	g := &CellGrid{
		cell: cell,
		gx0:  int(math.Floor(hull.Min.X / cell)),
		gy0:  int(math.Floor(hull.Min.Y / cell)),
	}
	g.gw = int(math.Floor(hull.Max.X/cell)) - g.gx0 + 1
	g.gh = int(math.Floor(hull.Max.Y/cell)) - g.gy0 + 1

	cells := g.gw * g.gh
	g.start = make([]int32, cells+1)
	for i := range rects {
		cx0, cx1, cy0, cy1 := g.Span(rects[i], 0)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				g.start[cy*g.gw+cx+1]++
			}
		}
	}
	for c := 0; c < cells; c++ {
		g.start[c+1] += g.start[c]
	}
	g.items = make([]int32, g.start[cells])
	fill := make([]int32, cells)
	for i := range rects {
		cx0, cx1, cy0, cy1 := g.Span(rects[i], 0)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				c := cy*g.gw + cx
				g.items[g.start[c]+fill[c]] = int32(i)
				fill[c]++
			}
		}
	}
	return g
}

// Cell returns the (possibly coarsened) cell size.
func (g *CellGrid) Cell() float64 { return g.cell }

// Span returns r inflated by margin as a grid-local cell range,
// clamped to the grid. Iterate cy over [cy0, cy1] and cx over
// [cx0, cx1] and fetch members with ItemsIn.
func (g *CellGrid) Span(r Rect, margin float64) (cx0, cx1, cy0, cy1 int) {
	cx0 = max(int(math.Floor((r.Min.X-margin)/g.cell))-g.gx0, 0)
	cx1 = min(int(math.Floor((r.Max.X+margin)/g.cell))-g.gx0, g.gw-1)
	cy0 = max(int(math.Floor((r.Min.Y-margin)/g.cell))-g.gy0, 0)
	cy1 = min(int(math.Floor((r.Max.Y+margin)/g.cell))-g.gy0, g.gh-1)
	return
}

// ItemsIn returns the rect ids overlapping grid-local cell (cx, cy).
func (g *CellGrid) ItemsIn(cx, cy int) []int32 {
	c := cy*g.gw + cx
	return g.items[g.start[c]:g.start[c+1]]
}

// CellCenter returns the world-space center of grid-local cell (cx, cy).
func (g *CellGrid) CellCenter(cx, cy int) Point {
	return Pt((float64(cx+g.gx0)+0.5)*g.cell, (float64(cy+g.gy0)+0.5)*g.cell)
}
