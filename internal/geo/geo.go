// Package geo provides the planar geometry primitives used throughout the
// ViewMap reproduction: points and distances in a local metric frame,
// line segments, axis-aligned rectangles (used as building footprints),
// and line-of-sight tests against obstacle sets.
//
// The paper's field experiments take place in a metropolitan area a few
// kilometres across, so a flat local tangent plane with coordinates in
// metres is an adequate substitute for geodetic coordinates. All
// distances are Euclidean metres.
package geo

import (
	"fmt"
	"math"
)

// Point is a location on the local plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q treated
// as vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
// Threshold comparisons on the hot paths (viewmap proximity checks,
// per-second contact detection) compare against the squared radius to
// skip math.Hypot's overflow-safe sqrt.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
// t=0 yields p, t=1 yields q; t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the segment length in metres.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point a fraction t along the segment from A to B.
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return s.At(0.5) }

const epsilon = 1e-9

// orientation classifies the turn a->b->c: +1 counter-clockwise,
// -1 clockwise, 0 collinear (within epsilon).
func orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	switch {
	case v > epsilon:
		return 1
	case v < -epsilon:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point p lies on segment s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X)-epsilon <= p.X && p.X <= math.Max(s.A.X, s.B.X)+epsilon &&
		math.Min(s.A.Y, s.B.Y)-epsilon <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)+epsilon
}

// Intersects reports whether segments s and t share at least one point.
func (s Segment) Intersects(t Segment) bool {
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear overlap cases.
	if o1 == 0 && onSegment(s, t.A) {
		return true
	}
	if o2 == 0 && onSegment(s, t.B) {
		return true
	}
	if o3 == 0 && onSegment(t, s.A) {
		return true
	}
	if o4 == 0 && onSegment(t, s.B) {
		return true
	}
	return false
}

// DistToPoint returns the shortest distance from point p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return math.Sqrt(s.Dist2ToPoint(p))
}

// Dist2ToPoint returns the squared shortest distance from point p to the
// segment; the spatial-index cell prune compares it against a squared
// radius to avoid a sqrt per visited cell.
func (s Segment) Dist2ToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist2(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return p.Dist2(s.At(t))
}

// Rect is an axis-aligned rectangle, used as a building footprint or a
// coverage area. Min is the lower-left corner and Max the upper-right.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle covering the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectAround returns the square of side 2r centred on p.
func RectAround(p Point, r float64) Rect {
	return Rect{Min: Point{p.X - r, p.Y - r}, Max: Point{p.X + r, p.Y + r}}
}

// Width returns the rectangle's extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's centre point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-epsilon && p.X <= r.Max.X+epsilon &&
		p.Y >= r.Min.Y-epsilon && p.Y <= r.Max.Y+epsilon
}

// ContainsStrict reports whether p lies strictly inside r (not on the
// boundary). Line-of-sight tests use this so that a sight line grazing a
// building wall is not counted as blocked.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.Min.X+epsilon && p.X < r.Max.X-epsilon &&
		p.Y > r.Min.Y+epsilon && p.Y < r.Max.Y-epsilon
}

// Edges returns the four boundary segments of r.
func (r Rect) Edges() [4]Segment {
	a := r.Min
	b := Point{r.Max.X, r.Min.Y}
	c := r.Max
	d := Point{r.Min.X, r.Max.Y}
	return [4]Segment{Seg(a, b), Seg(b, c), Seg(c, d), Seg(d, a)}
}

// Intersects reports whether the segment passes through the interior of
// the rectangle. A segment that only touches the boundary (grazes a
// wall) is not considered to intersect.
func (r Rect) IntersectsSegment(s Segment) bool {
	if r.ContainsStrict(s.A) || r.ContainsStrict(s.B) {
		return true
	}
	// The segment crosses the interior iff it crosses the boundary at
	// two distinct points; testing the midpoint of the clipped span is
	// simpler: sample the segment against edges.
	hits := 0
	for _, e := range r.Edges() {
		if s.Intersects(e) {
			hits++
		}
	}
	if hits < 2 {
		return false
	}
	// Grazing along one wall yields >=2 edge hits but the midpoint of
	// the overlap stays on the boundary; require an interior sample.
	const samples = 32
	for i := 1; i < samples; i++ {
		if r.ContainsStrict(s.At(float64(i) / samples)) {
			return true
		}
	}
	return false
}

// Inflate returns r grown by d on every side (shrunk if d < 0).
func (r Rect) Inflate(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Obstacle is anything that can block a line of sight.
type Obstacle interface {
	// Blocks reports whether the obstacle interrupts the straight line
	// between a and b.
	Blocks(a, b Point) bool
}

// Building is a rectangular obstacle footprint.
type Building struct {
	Footprint Rect
}

// Blocks implements Obstacle.
func (bl Building) Blocks(a, b Point) bool {
	return bl.Footprint.IntersectsSegment(Seg(a, b))
}

// ObstacleSet is a collection of obstacles with a joint line-of-sight
// query.
type ObstacleSet struct {
	obstacles []Obstacle
}

// NewObstacleSet builds an obstacle set from the given obstacles.
func NewObstacleSet(obs ...Obstacle) *ObstacleSet {
	return &ObstacleSet{obstacles: obs}
}

// Add appends an obstacle to the set.
func (os *ObstacleSet) Add(o Obstacle) { os.obstacles = append(os.obstacles, o) }

// Len returns the number of obstacles in the set.
func (os *ObstacleSet) Len() int { return len(os.obstacles) }

// LOS reports whether a clear line of sight exists between a and b.
func (os *ObstacleSet) LOS(a, b Point) bool {
	if os == nil {
		return true
	}
	for _, o := range os.obstacles {
		if o.Blocks(a, b) {
			return false
		}
	}
	return true
}
