package geo

import (
	"sync"
	"sync/atomic"
)

// IndexedObstacles is a uniform-grid spatial index over rectangular
// building footprints. City-scale simulations issue millions of
// line-of-sight queries per simulated minute; a linear scan over
// thousands of buildings per query would dominate the run time, so the
// index walks only the grid cells the sight line passes through.
//
// The grid is a dense CSR CellGrid over the inserted footprints, built
// lazily on the first query after an insertion and published through
// an atomic pointer. Queries deduplicate footprints spanning several
// cells with an epoch-stamped visited array drawn from a pool, so the
// query path performs no map operations and no allocations in steady
// state. LOS is safe for concurrent use once the footprints are
// inserted.
type IndexedObstacles struct {
	cell float64

	mu    sync.Mutex // guards rects growth and grid rebuild
	rects []Rect
	grid  atomic.Pointer[CellGrid] // nil until built; cleared on insert

	scratch sync.Pool // *losScratch
}

// losScratch is the per-query dedup state: visited[id] == epoch marks
// footprint id as already tested this query.
type losScratch struct {
	visited []uint32
	epoch   uint32
}

// NewIndexedObstacles creates an index with the given cell size in
// metres. The cell should be on the order of the typical building
// footprint; city-block spacing works well.
func NewIndexedObstacles(cellSize float64) *IndexedObstacles {
	if cellSize <= 0 {
		cellSize = 100
	}
	return &IndexedObstacles{cell: cellSize}
}

// AddBuilding inserts a rectangular footprint.
func (ix *IndexedObstacles) AddBuilding(r Rect) {
	ix.mu.Lock()
	ix.rects = append(ix.rects, r)
	ix.grid.Store(nil)
	ix.mu.Unlock()
}

// Len returns the number of buildings indexed.
func (ix *IndexedObstacles) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.rects)
}

// ensure returns the grid and the footprint snapshot it was built
// over, (re)building after insertions. The grid is nil while the index
// is empty.
func (ix *IndexedObstacles) ensure() (*CellGrid, []Rect) {
	if g := ix.grid.Load(); g != nil {
		return g, ix.rects
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if g := ix.grid.Load(); g != nil {
		return g, ix.rects
	}
	if len(ix.rects) == 0 {
		return nil, nil
	}
	g := NewCellGrid(ix.rects, ix.cell, DefaultMaxGridCells)
	ix.grid.Store(g)
	return g, ix.rects
}

// LOS reports whether the straight line between a and b avoids every
// indexed footprint. It implements the same geometry as
// ObstacleSet.LOS but visits only cells along the segment.
func (ix *IndexedObstacles) LOS(a, b Point) bool {
	if ix == nil {
		return true
	}
	grid, rects := ix.ensure()
	if grid == nil {
		return true
	}
	sc, _ := ix.scratch.Get().(*losScratch)
	if sc == nil || len(sc.visited) < len(rects) {
		sc = &losScratch{visited: make([]uint32, len(rects))}
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stamps are stale, reset
		clear(sc.visited)
		sc.epoch = 1
	}
	epoch := sc.epoch
	seg := Seg(a, b)
	// Conservative cell walk: visit every cell in the segment's
	// bounding box row range, clipped per row to the segment's span.
	// Segments in these simulations are short relative to the grid, so
	// the loss over exact traversal is negligible, and correctness is
	// easy to see. The walk is clamped to the populated grid range;
	// cells outside it hold no footprints.
	cell := grid.Cell()
	cx0, cx1, cy0, cy1 := grid.Span(NewRect(a, b), cell)
	prune2 := 2 * cell * cell // (cell*sqrt2)^2
	unobstructed := true
scan:
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			// Skip cells whose box is farther from the segment than one
			// cell diagonal.
			if seg.Dist2ToPoint(grid.CellCenter(cx, cy)) > prune2 {
				continue
			}
			for _, id := range grid.ItemsIn(cx, cy) {
				if sc.visited[id] == epoch {
					continue
				}
				sc.visited[id] = epoch
				if rects[id].IntersectsSegment(seg) {
					unobstructed = false
					break scan
				}
			}
		}
	}
	ix.scratch.Put(sc)
	return unobstructed
}

// Blocks makes IndexedObstacles usable as a single Obstacle inside an
// ObstacleSet.
func (ix *IndexedObstacles) Blocks(a, b Point) bool { return !ix.LOS(a, b) }

// AsSet wraps the index in an ObstacleSet for APIs that take one.
func (ix *IndexedObstacles) AsSet() *ObstacleSet { return NewObstacleSet(ix) }
