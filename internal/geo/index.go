package geo

import "math"

// IndexedObstacles is a uniform-grid spatial index over rectangular
// building footprints. City-scale simulations issue millions of
// line-of-sight queries per simulated minute; a linear scan over
// thousands of buildings per query would dominate the run time, so the
// index walks only the grid cells the sight line passes through.
type IndexedObstacles struct {
	cell  float64
	cells map[[2]int][]Rect
	count int
}

// NewIndexedObstacles creates an index with the given cell size in
// metres. The cell should be on the order of the typical building
// footprint; city-block spacing works well.
func NewIndexedObstacles(cellSize float64) *IndexedObstacles {
	if cellSize <= 0 {
		cellSize = 100
	}
	return &IndexedObstacles{cell: cellSize, cells: make(map[[2]int][]Rect)}
}

// AddBuilding inserts a rectangular footprint.
func (ix *IndexedObstacles) AddBuilding(r Rect) {
	x0 := int(math.Floor(r.Min.X / ix.cell))
	x1 := int(math.Floor(r.Max.X / ix.cell))
	y0 := int(math.Floor(r.Min.Y / ix.cell))
	y1 := int(math.Floor(r.Max.Y / ix.cell))
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			ix.cells[[2]int{cx, cy}] = append(ix.cells[[2]int{cx, cy}], r)
		}
	}
	ix.count++
}

// Len returns the number of buildings indexed.
func (ix *IndexedObstacles) Len() int { return ix.count }

// LOS reports whether the straight line between a and b avoids every
// indexed footprint. It implements the same geometry as
// ObstacleSet.LOS but visits only cells along the segment.
func (ix *IndexedObstacles) LOS(a, b Point) bool {
	if ix == nil || ix.count == 0 {
		return true
	}
	seg := Seg(a, b)
	// Conservative cell walk: visit every cell in the segment's
	// bounding box row range, clipped per row to the segment's span.
	// Segments in these simulations are short relative to the grid, so
	// the loss over exact traversal is negligible, and correctness is
	// easy to see.
	x0 := int(math.Floor(math.Min(a.X, b.X)/ix.cell)) - 1
	x1 := int(math.Floor(math.Max(a.X, b.X)/ix.cell)) + 1
	y0 := int(math.Floor(math.Min(a.Y, b.Y)/ix.cell)) - 1
	y1 := int(math.Floor(math.Max(a.Y, b.Y)/ix.cell)) + 1
	seen := make(map[*Rect]bool)
	for cx := x0; cx <= x1; cx++ {
		for cy := y0; cy <= y1; cy++ {
			// Skip cells whose box is farther from the segment than one
			// cell diagonal.
			cellCenter := Pt((float64(cx)+0.5)*ix.cell, (float64(cy)+0.5)*ix.cell)
			if seg.DistToPoint(cellCenter) > ix.cell*math.Sqrt2 {
				continue
			}
			for i := range ix.cells[[2]int{cx, cy}] {
				r := &ix.cells[[2]int{cx, cy}][i]
				if seen[r] {
					continue
				}
				seen[r] = true
				if r.IntersectsSegment(seg) {
					return false
				}
			}
		}
	}
	return true
}

// Blocks makes IndexedObstacles usable as a single Obstacle inside an
// ObstacleSet.
func (ix *IndexedObstacles) Blocks(a, b Point) bool { return !ix.LOS(a, b) }

// AsSet wraps the index in an ObstacleSet for APIs that take one.
func (ix *IndexedObstacles) AsSet() *ObstacleSet { return NewObstacleSet(ix) }
