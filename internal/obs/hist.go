// Package obs is the server-side observability layer: lock-free
// log-bucketed latency histograms with mergeable snapshots, a fixed
// metric registry exposed in Prometheus text format, and lightweight
// per-request traces with per-stage span accounting. Everything on
// the record path is allocation-free and wait-free (one or two atomic
// adds); everything that aggregates — snapshots, quantiles, the
// exposition writer — runs off the hot path and tolerates concurrent
// recording with weak (per-counter atomic) consistency.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

const (
	// numBuckets is one bucket per possible bit length of a uint64
	// value: bucket b holds values v with bits.Len64(v) == b, i.e.
	// the power-of-two range [2^(b-1), 2^b). Bucket 0 holds zero.
	numBuckets = 64

	// numShards stripes the counters so concurrent recorders from
	// different goroutines rarely contend on one cache line. Must be
	// a power of two.
	numShards = 8

	shardMask = numShards - 1
)

// histShard is one stripe of counters. The pad keeps adjacent shards
// off each other's final cache line.
type histShard struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [7]uint64
}

// Histogram is a lock-free latency/size histogram with power-of-two
// buckets. Record is wait-free (two atomic adds on a striped shard)
// and a nil *Histogram is a valid no-op receiver, which is how the
// disabled-metrics path compiles down to a nil check.
//
// Units are the caller's: the server records durations in
// nanoseconds and sizes in plain counts; the exposition layer owns
// the conversion.
type Histogram struct {
	shards [numShards]histShard
}

// stackShard picks a counter stripe from the address of a stack
// local: goroutine stacks are disjoint, so concurrent recorders
// spread across shards while a single goroutine keeps hitting the
// same (cache-warm) one. The pointer is only hashed, never
// dereferenced or retained.
func stackShard() int {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return int((p>>6)^(p>>13)) & shardMask
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b > numBuckets-1 {
		b = numBuckets - 1
	}
	s := &h.shards[stackShard()]
	s.counts[b].Add(1)
	s.sum.Add(uint64(v))
}

// RecordSince is shorthand for recording an elapsed-nanosecond span.
func (h *Histogram) RecordSince(startNS, nowNS int64) {
	h.Record(nowNS - startNS)
}

// Snapshot is a point-in-time merge of a histogram's shards. It is a
// plain value: copy it, merge others into it, or compute quantiles
// without touching the live histogram again. Snapshots taken while
// recorders run are weakly consistent — each counter is read
// atomically, but Sum may lag the buckets by in-flight observations.
type Snapshot struct {
	// Buckets[b] counts observations v with bits.Len64(v) == b.
	Buckets [numBuckets]uint64
	// Count is the total number of observations (sum of Buckets).
	Count uint64
	// Sum is the exact running total in the recorded unit.
	Sum uint64
}

// Snapshot merges the shards into one mergeable snapshot. A nil
// histogram yields a zero snapshot.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Buckets[b] += sh.counts[b].Load()
		}
		s.Sum += sh.sum.Load()
	}
	for _, c := range s.Buckets {
		s.Count += c
	}
	return s
}

// Merge adds another snapshot into s (cross-shard, cross-node, or
// cross-histogram aggregation).
func (s *Snapshot) Merge(o Snapshot) {
	for b := range s.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// BucketUpper is the largest value bucket b can hold: 0 for bucket 0,
// 2^b − 1 otherwise.
func BucketUpper(b int) uint64 {
	if b <= 0 {
		return 0
	}
	if b >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(b) - 1
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) as the upper bound
// of the bucket holding the rank-⌈q·Count⌉ observation. The estimate
// e of a true sample value v ≥ 1 therefore satisfies v ≤ e < 2v — an
// upper bound that is never more than one power of two away
// (TestHistogramQuantileBrackets pins exactly this property).
func (s Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range s.Buckets {
		cum += c
		if cum >= target {
			return BucketUpper(b)
		}
	}
	return BucketUpper(numBuckets - 1)
}

// Mean is Sum/Count in the recorded unit, 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
