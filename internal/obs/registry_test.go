package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRegistryPrometheusExposition drives a small registry and checks
// the text exposition: every family header present, cumulative
// buckets monotone, label sets and unit conversion correct.
func TestRegistryPrometheusExposition(t *testing.T) {
	r := NewRegistry(true, []string{"/v1/vp/batch", "/v1/investigate"}, []string{"ingest", "investigate"})
	r.Endpoint("/v1/vp/batch").Record(int64(3 * time.Millisecond))
	r.Endpoint("/v1/vp/batch").Record(int64(9 * time.Millisecond))
	r.Endpoint("/v1/unknown").Record(int64(time.Millisecond)) // lands in "other"
	r.Stage(StageDecode).Record(int64(40 * time.Microsecond))
	r.WALBatch().Record(7)
	r.QueueDepth("ingest").Record(3)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE " + MetricHTTPRequestSeconds + " histogram",
		"# TYPE " + MetricIngestStageSeconds + " histogram",
		"# TYPE " + MetricWALCommitBatchRecords + " histogram",
		"# TYPE " + MetricAdmissionQueueDepth + " histogram",
		MetricHTTPRequestSeconds + `_count{endpoint="/v1/vp/batch"} 2`,
		MetricHTTPRequestSeconds + `_count{endpoint="other"} 1`,
		MetricIngestStageSeconds + `_count{stage="decode"} 1`,
		MetricWALCommitBatchRecords + `_bucket{le="7"} 1`,
		MetricWALCommitBatchRecords + "_count 1",
		MetricAdmissionQueueDepth + `_count{class="ingest"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryDisabled: a disabled (or nil) registry hands out nil
// histograms, records nothing, and renders empty families.
func TestRegistryDisabled(t *testing.T) {
	for _, r := range []*Registry{nil, NewRegistry(false, []string{"/x"}, []string{"ingest"})} {
		if r.Enabled() {
			t.Fatal("disabled registry reports enabled")
		}
		if h := r.Endpoint("/x"); h != nil {
			t.Fatal("disabled registry returned a live histogram")
		}
		r.Endpoint("/x").Record(5) // nil receiver: must not panic
		r.Stage(StageFsync).Record(5)
		r.WALBatch().Record(5)
		r.QueueDepth("ingest").Record(5)
		if n := len(r.EndpointSnapshots()); n != 0 {
			t.Fatalf("disabled registry snapshotted %d endpoints", n)
		}
		var b strings.Builder
		r.WritePrometheus(&b)
		if strings.Contains(b.String(), "_count{") {
			t.Fatalf("disabled exposition has series:\n%s", b.String())
		}
	}
}

// TestTraceSpansAndContext covers the trace lifecycle: minting,
// context round-trip, concurrent-safe span accumulation, and the
// slow-log rendering order.
func TestTraceSpansAndContext(t *testing.T) {
	tr := StartTrace()
	if tr.ID() == 0 {
		t.Fatal("trace ID zero")
	}
	if StartTrace().ID() == tr.ID() {
		t.Fatal("trace IDs collide")
	}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("context round-trip lost the trace")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr.Observe(StageCommit, 2*time.Millisecond)
	tr.Observe(StageDecode, time.Millisecond)
	tr.Observe(StageCommit, time.Millisecond)
	if ns := tr.SpanNS(StageCommit); ns != int64(3*time.Millisecond) {
		t.Fatalf("commit span %d", ns)
	}
	spans := tr.Spans()
	if spans != "decode=1ms commit=3ms" {
		t.Fatalf("spans rendered %q", spans)
	}
	var nilT *Trace
	nilT.Observe(StageDecode, time.Second) // no-op
	if nilT.Spans() != "" || nilT.ID() != 0 {
		t.Fatal("nil trace not inert")
	}
}
