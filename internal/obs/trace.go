package obs

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Trace is one request's span accounting: an ID minted at admission
// plus a per-stage nanosecond accumulator. It rides the request
// context into the handler, is pinned to each minute burst through
// the ring, and collects WAL-append spans on the commit path. Stages
// executed by different goroutines (link workers, group commit)
// accumulate concurrently — each span is one atomic add — and the
// shard's ack (channel close) orders every worker-side write before
// the submitter reads the totals.
//
// A shared stage (one CommitStaged covering several queued bursts,
// one fsync covering a commit group) is charged in full to every
// request it covered, so spans can overlap and sum to more than the
// wall-clock total; see docs/observability.md.
//
// A nil *Trace is a valid no-op receiver.
type Trace struct {
	id    uint64
	start time.Time
	spans [NumStages]atomic.Int64
}

var traceCounter atomic.Uint64

// StartTrace mints a trace with a process-unique ID, stamped now.
func StartTrace() *Trace {
	return &Trace{id: traceCounter.Add(1), start: time.Now()}
}

// ID returns the trace identifier (unique within the process).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Start returns the admission timestamp.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Observe adds a span's duration to one stage's accumulator.
func (t *Trace) Observe(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= NumStages {
		return
	}
	t.spans[s].Add(int64(d))
}

// SpanNS returns the accumulated nanoseconds of one stage.
func (t *Trace) SpanNS(s Stage) int64 {
	if t == nil || s < 0 || s >= NumStages {
		return 0
	}
	return t.spans[s].Load()
}

// Spans renders the non-zero stage accumulators as space-separated
// key=value pairs in pipeline order — the payload of the slow-request
// log line.
func (t *Trace) Spans() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for s := Stage(0); s < NumStages; s++ {
		ns := t.spans[s].Load()
		if ns == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", s, time.Duration(ns))
	}
	return b.String()
}

type traceKey struct{}

// WithTrace attaches a trace to a request context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when none was minted
// (disabled metrics, internal callers).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
