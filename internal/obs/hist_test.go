package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramConcurrentRecordAndSnapshot hammers one histogram from
// many recorders while snapshots are taken and merged concurrently —
// the -race run of this test is the lock-freedom proof — and then
// verifies no observation was lost once the recorders drain.
func TestHistogramConcurrentRecordAndSnapshot(t *testing.T) {
	h := &Histogram{}
	const (
		writers   = 8
		perWriter = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotters: merge pairs of snapshots while the
	// recorders run; counts observed mid-flight must be monotone and
	// internally consistent (Count equals the bucket sum).
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := h.Snapshot(), h.Snapshot()
				a.Merge(b)
				var sum uint64
				for _, c := range b.Buckets {
					sum += c
				}
				if b.Count != sum {
					t.Errorf("snapshot count %d != bucket sum %d", b.Count, sum)
					return
				}
			}
		}()
	}
	var rec sync.WaitGroup
	for w := 0; w < writers; w++ {
		rec.Add(1)
		go func(seed int64) {
			defer rec.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w + 1))
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count != writers*perWriter {
		t.Fatalf("lost observations: %d recorded, %d counted", writers*perWriter, final.Count)
	}
}

// TestHistogramQuantileBrackets pins the accuracy contract of the
// power-of-two buckets against a sorted reference: for every tested
// quantile of every randomized sample set, the estimate e of true
// value v satisfies v <= e < 2v.
func TestHistogramQuantileBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	quantiles := []float64{0.5, 0.9, 0.99, 1.0}
	for trial := 0; trial < 20; trial++ {
		n := 100 + rng.Intn(4000)
		h := &Histogram{}
		vals := make([]uint64, n)
		for i := range vals {
			// Mix scales so every trial spans many buckets.
			v := uint64(1+rng.Int63n(1<<uint(8+rng.Intn(30)))) | 1
			vals[i] = v
			h.Record(int64(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		snap := h.Snapshot()
		if snap.Count != uint64(n) {
			t.Fatalf("trial %d: count %d != %d", trial, snap.Count, n)
		}
		for _, q := range quantiles {
			rank := int(q*float64(n)+0.9999999) - 1
			if rank < 0 {
				rank = 0
			}
			if rank >= n {
				rank = n - 1
			}
			truth := vals[rank]
			est := snap.Quantile(q)
			if est < truth || est >= 2*truth {
				t.Fatalf("trial %d q=%v: estimate %d outside [%d, %d)", trial, q, est, truth, 2*truth)
			}
		}
	}
}

// TestHistogramMergeEqualsUnion: merging snapshots of two histograms
// equals the snapshot of one histogram fed both streams.
func TestHistogramMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b, union := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 3000; i++ {
		v := rng.Int63n(1 << 40)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		union.Record(v)
	}
	got := a.Snapshot()
	got.Merge(b.Snapshot())
	want := union.Snapshot()
	if got != want {
		t.Fatalf("merged snapshot differs from union:\n got %+v\nwant %+v", got, want)
	}
}

// TestHistogramNilAndEdgeValues: nil receivers no-op, negatives clamp
// to bucket zero, and huge values land in the top bucket.
func TestHistogramNilAndEdgeValues(t *testing.T) {
	var nilH *Histogram
	nilH.Record(42) // must not panic
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram counted %d", s.Count)
	}
	h := &Histogram{}
	h.Record(-5)
	h.Record(0)
	h.Record(int64(^uint64(0) >> 1)) // MaxInt64
	s := h.Snapshot()
	if s.Buckets[0] != 2 {
		t.Fatalf("zero bucket holds %d, want 2", s.Buckets[0])
	}
	if s.Buckets[63] != 1 {
		t.Fatalf("top bucket holds %d, want 1", s.Buckets[63])
	}
	if got := s.Quantile(1.0); got != BucketUpper(63) {
		t.Fatalf("max quantile %d, want %d", got, BucketUpper(63))
	}
}
