package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Stage names one instrumented stage of the ingest pipeline, in
// pipeline order: wire decode+validate, burst-ring wait, link-worker
// Stage, CommitStaged under the shard lock, WAL append (including the
// group-commit wait), and the fsync itself.
type Stage int

// The instrumented pipeline stages. NumStages is the array bound for
// per-stage state, not a stage.
const (
	StageDecode Stage = iota
	StageRingWait
	StageLink
	StageCommit
	StageWALAppend
	StageFsync
	NumStages
)

var stageNames = [NumStages]string{
	StageDecode:    "decode",
	StageRingWait:  "ring_wait",
	StageLink:      "link_stage",
	StageCommit:    "commit",
	StageWALAppend: "wal_append",
	StageFsync:     "fsync",
}

// String returns the stage's label as exposed on /v1/metrics and in
// the stats pipeline block.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Metric family names served by the registry's Prometheus exposition.
// cmd/repolint cross-checks this list against the catalog in
// docs/observability.md, both directions: a metric added here without
// a doc row — or documented without existing — fails the docs job.
const (
	// MetricHTTPRequestSeconds is the per-endpoint request latency
	// histogram (label: endpoint), measured around the whole handler
	// including admission queueing.
	MetricHTTPRequestSeconds = "viewmap_http_request_seconds"
	// MetricIngestStageSeconds is the per-stage ingest pipeline
	// latency histogram (label: stage; see Stage for the values).
	MetricIngestStageSeconds = "viewmap_ingest_stage_seconds"
	// MetricWALCommitBatchRecords is the WAL group-commit batch-size
	// histogram: records made durable per fsync.
	MetricWALCommitBatchRecords = "viewmap_wal_commit_batch_records"
	// MetricAdmissionQueueDepth is the admission-gate queue depth
	// histogram (label: class), sampled at every arrival.
	MetricAdmissionQueueDepth = "viewmap_admission_queue_depth"
	// MetricTrustRankIterations is the power-iteration count histogram
	// per verification (label: mode), split by whether the run warm-
	// started from a cached score vector or recomputed cold.
	MetricTrustRankIterations = "viewmap_trustrank_iterations"
)

// TrustRank verification modes, the values of MetricTrustRankIterations's
// mode label.
const (
	TrustRankWarm = "warm"
	TrustRankCold = "cold"
)

// Registry holds the fixed metric families of one server. All
// histograms are created up front — the lookup on the record path is
// a read-only map access or array index, never a lock or an
// allocation. A nil or disabled registry hands out nil histograms,
// whose Record is a nil-check no-op; that is the "metrics off"
// configuration the overhead smoke compares against.
type Registry struct {
	enabled   bool
	endpoints map[string]*Histogram
	other     *Histogram
	stages    [NumStages]*Histogram
	walBatch  *Histogram
	depth     map[string]*Histogram
	trustrank map[string]*Histogram
}

// NewRegistry builds a registry over the given endpoint paths and
// admission-class names. When enabled is false every accessor returns
// nil and the exposition renders empty families.
func NewRegistry(enabled bool, endpoints, classes []string) *Registry {
	r := &Registry{enabled: enabled}
	if !enabled {
		return r
	}
	r.endpoints = make(map[string]*Histogram, len(endpoints))
	for _, e := range endpoints {
		r.endpoints[e] = &Histogram{}
	}
	r.other = &Histogram{}
	for i := range r.stages {
		r.stages[i] = &Histogram{}
	}
	r.walBatch = &Histogram{}
	r.depth = make(map[string]*Histogram, len(classes))
	for _, c := range classes {
		r.depth[c] = &Histogram{}
	}
	r.trustrank = map[string]*Histogram{
		TrustRankWarm: {},
		TrustRankCold: {},
	}
	return r
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil && r.enabled }

// Endpoint returns the latency histogram for a request path; paths
// not registered up front share the "other" histogram.
func (r *Registry) Endpoint(path string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	if h, ok := r.endpoints[path]; ok {
		return h
	}
	return r.other
}

// Stage returns the pipeline histogram for one ingest stage.
func (r *Registry) Stage(s Stage) *Histogram {
	if !r.Enabled() || s < 0 || s >= NumStages {
		return nil
	}
	return r.stages[s]
}

// WALBatch returns the group-commit batch-size histogram.
func (r *Registry) WALBatch() *Histogram {
	if !r.Enabled() {
		return nil
	}
	return r.walBatch
}

// QueueDepth returns the admission-queue-depth histogram for a class,
// or nil for an unknown class.
func (r *Registry) QueueDepth(class string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	return r.depth[class]
}

// TrustRank returns the power-iteration-count histogram for one
// verification mode (TrustRankWarm or TrustRankCold), or nil for an
// unknown mode.
func (r *Registry) TrustRank(mode string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	return r.trustrank[mode]
}

// TrustRankSnapshots returns one iteration-count snapshot per
// verification mode, keyed by mode, skipping empty ones.
func (r *Registry) TrustRankSnapshots() map[string]Snapshot {
	out := make(map[string]Snapshot)
	if !r.Enabled() {
		return out
	}
	for mode, h := range r.trustrank {
		if s := h.Snapshot(); s.Count > 0 {
			out[mode] = s
		}
	}
	return out
}

// EndpointSnapshots returns a merged snapshot per registered endpoint
// path (the catch-all under "other"), skipping empty ones.
func (r *Registry) EndpointSnapshots() map[string]Snapshot {
	out := make(map[string]Snapshot)
	if !r.Enabled() {
		return out
	}
	for p, h := range r.endpoints {
		if s := h.Snapshot(); s.Count > 0 {
			out[p] = s
		}
	}
	if s := r.other.Snapshot(); s.Count > 0 {
		out["other"] = s
	}
	return out
}

// StageSnapshots returns one snapshot per pipeline stage, indexed by
// Stage.
func (r *Registry) StageSnapshots() [NumStages]Snapshot {
	var out [NumStages]Snapshot
	if !r.Enabled() {
		return out
	}
	for i, h := range r.stages {
		out[i] = h.Snapshot()
	}
	return out
}

// WALBatchSnapshot returns the group-commit batch-size snapshot.
func (r *Registry) WALBatchSnapshot() Snapshot {
	if !r.Enabled() {
		return Snapshot{}
	}
	return r.walBatch.Snapshot()
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
// Duration histograms are converted from recorded nanoseconds to
// seconds; size histograms stay in raw counts.
func (r *Registry) WritePrometheus(w io.Writer) {
	writeFamily(w, MetricHTTPRequestSeconds, "endpoint", r.sortedEndpoints(), true)
	stages := make([]labeledHist, 0, NumStages)
	if r.Enabled() {
		for i, h := range r.stages {
			stages = append(stages, labeledHist{Stage(i).String(), h})
		}
	}
	writeFamily(w, MetricIngestStageSeconds, "stage", stages, true)
	var batch []labeledHist
	if r.Enabled() {
		batch = []labeledHist{{"", r.walBatch}}
	}
	writeFamily(w, MetricWALCommitBatchRecords, "", batch, false)
	var depth []labeledHist
	if r.Enabled() {
		classes := make([]string, 0, len(r.depth))
		for c := range r.depth {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			depth = append(depth, labeledHist{c, r.depth[c]})
		}
	}
	writeFamily(w, MetricAdmissionQueueDepth, "class", depth, false)
	var tr []labeledHist
	if r.Enabled() {
		modes := make([]string, 0, len(r.trustrank))
		for m := range r.trustrank {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		for _, m := range modes {
			tr = append(tr, labeledHist{m, r.trustrank[m]})
		}
	}
	writeFamily(w, MetricTrustRankIterations, "mode", tr, false)
}

type labeledHist struct {
	label string
	h     *Histogram
}

func (r *Registry) sortedEndpoints() []labeledHist {
	if !r.Enabled() {
		return nil
	}
	paths := make([]string, 0, len(r.endpoints))
	for p := range r.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]labeledHist, 0, len(paths)+1)
	for _, p := range paths {
		out = append(out, labeledHist{p, r.endpoints[p]})
	}
	return append(out, labeledHist{"other", r.other})
}

// writeFamily emits one histogram family. Cumulative buckets stop at
// the highest non-empty bucket (a valid exposition — `le` stays
// increasing and +Inf always closes the series), keeping the payload
// proportional to the value range actually observed.
func writeFamily(w io.Writer, name, labelKey string, series []labeledHist, seconds bool) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, s := range series {
		snap := s.h.Snapshot()
		label := ""
		if labelKey != "" {
			label = labelKey + `="` + s.label + `",`
		}
		top := -1
		for b, c := range snap.Buckets {
			if c > 0 {
				top = b
			}
		}
		var cum uint64
		for b := 0; b <= top; b++ {
			cum += snap.Buckets[b]
			fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n",
				name, label, formatBound(BucketUpper(b), seconds), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, label, snap.Count)
		sum := float64(snap.Sum)
		if seconds {
			sum /= 1e9
		}
		if labelKey != "" {
			fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, labelKey, s.label, formatFloat(sum))
			fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, labelKey, s.label, snap.Count)
		} else {
			fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum))
			fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
		}
	}
}

func formatBound(upper uint64, seconds bool) string {
	if !seconds {
		return strconv.FormatUint(upper, 10)
	}
	return formatFloat(float64(upper) / 1e9)
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
