package mobility

import (
	"math"
	"testing"

	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	c, err := roadnet.BuildGrid(roadnet.GridConfig{Cols: 6, Rows: 6, Spacing: 200, BuildingFill: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateBasics(t *testing.T) {
	city := testCity(t)
	tr, err := Generate(city, Config{Vehicles: 10, Seconds: 120, MeanSpeedKmh: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumVehicles() != 10 {
		t.Errorf("NumVehicles = %d, want 10", tr.NumVehicles())
	}
	if tr.Seconds != 120 {
		t.Errorf("Seconds = %d, want 120", tr.Seconds)
	}
	for v := 0; v < 10; v++ {
		if len(tr.Positions[v]) != 120 {
			t.Fatalf("vehicle %d has %d samples, want 120", v, len(tr.Positions[v]))
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	city := testCity(t)
	cases := []Config{
		{Vehicles: 0, Seconds: 10, MeanSpeedKmh: 50},
		{Vehicles: 5, Seconds: 0, MeanSpeedKmh: 50},
		{Vehicles: 5, Seconds: 10, MeanSpeedKmh: 0},
	}
	for _, cfg := range cases {
		if _, err := Generate(city, cfg); err == nil {
			t.Errorf("Generate(%+v) should fail", cfg)
		}
	}
	// MixSpeeds ignores MeanSpeedKmh.
	if _, err := Generate(city, Config{Vehicles: 2, Seconds: 10, MixSpeeds: true, Seed: 1}); err != nil {
		t.Errorf("MixSpeeds config should succeed: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	city := testCity(t)
	cfg := Config{Vehicles: 5, Seconds: 60, MeanSpeedKmh: 50, Seed: 42}
	a, err := Generate(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		for s := 0; s < 60; s++ {
			if a.Positions[v][s] != b.Positions[v][s] {
				t.Fatalf("same seed should reproduce trace; differs at v=%d t=%d", v, s)
			}
		}
	}
}

func TestGenerateSpeedRealized(t *testing.T) {
	city := testCity(t)
	tr, err := Generate(city, Config{Vehicles: 8, Seconds: 300, MeanSpeedKmh: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Per-second displacement should match the vehicle's speed except at
	// trip turnaround/grid corners (where the route bends, shortening the
	// Euclidean step). Check the maximum step never exceeds the speed and
	// the typical step is near it.
	for v := 0; v < tr.NumVehicles(); v++ {
		speed := tr.Speeds[v]
		atSpeed := 0
		for s := 1; s < tr.Seconds; s++ {
			d := tr.Positions[v][s-1].Dist(tr.Positions[v][s])
			if d > speed+1e-6 {
				t.Fatalf("vehicle %d moved %v m/s, exceeds speed %v", v, d, speed)
			}
			if math.Abs(d-speed) < speed*0.25 {
				atSpeed++
			}
		}
		if frac := float64(atSpeed) / float64(tr.Seconds-1); frac < 0.5 {
			t.Errorf("vehicle %d cruises at speed only %.0f%% of the time", v, frac*100)
		}
	}
}

func TestGeneratePositionsOnGrid(t *testing.T) {
	city := testCity(t)
	tr, err := Generate(city, Config{Vehicles: 5, Seconds: 120, MeanSpeedKmh: 70, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bounds := city.Bounds.Inflate(1)
	for v := 0; v < 5; v++ {
		for s := 0; s < 120; s++ {
			p := tr.Positions[v][s]
			if !bounds.Contains(p) {
				t.Fatalf("vehicle %d left the city at t=%d: %v", v, s, p)
			}
			// Streets are axis-aligned: at least one coordinate must sit
			// on a street line (multiple of spacing).
			onX := math.Mod(p.X, 200) < 1e-6 || 200-math.Mod(p.X, 200) < 1e-6
			onY := math.Mod(p.Y, 200) < 1e-6 || 200-math.Mod(p.Y, 200) < 1e-6
			if !onX && !onY {
				t.Fatalf("vehicle %d off-street at t=%d: %v", v, s, p)
			}
		}
	}
}

func TestMixSpeeds(t *testing.T) {
	city := testCity(t)
	tr, err := Generate(city, Config{Vehicles: 60, Seconds: 10, MixSpeeds: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// With 60 vehicles across {30,50,70} km/h we expect a spread of
	// speeds covering roughly 30*(1±.15) to 70*(1±.15) km/h.
	minS, maxS := math.Inf(1), math.Inf(-1)
	for _, s := range tr.Speeds {
		minS = math.Min(minS, s)
		maxS = math.Max(maxS, s)
	}
	if minS > KmhToMs(40) {
		t.Errorf("mix should include slow vehicles, min speed %v m/s", minS)
	}
	if maxS < KmhToMs(60) {
		t.Errorf("mix should include fast vehicles, max speed %v m/s", maxS)
	}
}

func TestKmhToMs(t *testing.T) {
	if got := KmhToMs(36); got != 10 {
		t.Errorf("KmhToMs(36) = %v, want 10", got)
	}
}

func TestContactIntervals(t *testing.T) {
	// Two vehicles approach, overlap for a window, then separate.
	a := StraightTrack(geo.Pt(0, 0), 1, 0, 10, 100)
	b := StraightTrack(geo.Pt(1000, 0), -1, 0, 10, 100)
	tr, err := TwoVehicleScenario(a, b)
	if err != nil {
		t.Fatal(err)
	}
	intervals := ContactIntervals(tr, nil, 400)
	if len(intervals) != 1 {
		t.Fatalf("expected a single contact interval, got %v", intervals)
	}
	// Gap shrinks by 20 m/s from 1000 m; within 400 m from t=30 to t=70
	// (gap = 1000-20t <= 400 => t >= 30; after crossing it grows again,
	// gap = 20t-1000 <= 400 => t <= 70). So roughly 41 seconds.
	if intervals[0] < 35 || intervals[0] > 45 {
		t.Errorf("contact interval = %d s, want ~41", intervals[0])
	}
}

func TestContactIntervalsBlockedByObstacle(t *testing.T) {
	a := StationaryTrack(geo.Pt(0, 0), 30)
	b := StationaryTrack(geo.Pt(100, 0), 30)
	tr, err := TwoVehicleScenario(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wall := geo.NewObstacleSet(geo.Building{Footprint: geo.NewRect(geo.Pt(40, -10), geo.Pt(60, 10))})
	if got := ContactIntervals(tr, wall, 400); len(got) != 0 {
		t.Errorf("NLOS pair should have no contact, got %v", got)
	}
	if got := ContactIntervals(tr, nil, 400); len(got) != 1 || got[0] != 30 {
		t.Errorf("LOS pair should be in contact the whole trace, got %v", got)
	}
}

func TestNeighborsAt(t *testing.T) {
	tracks := [][]geo.Point{
		StationaryTrack(geo.Pt(0, 0), 5),
		StationaryTrack(geo.Pt(100, 0), 5),
		StationaryTrack(geo.Pt(10000, 0), 5),
	}
	tr := &Trace{Positions: tracks, Speeds: []float64{0, 0, 0}, Seconds: 5}
	got := NeighborsAt(tr, nil, 0, 2, 400)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("NeighborsAt = %v, want [1]", got)
	}
}

func TestTwoVehicleScenarioValidation(t *testing.T) {
	if _, err := TwoVehicleScenario(nil, nil); err == nil {
		t.Error("empty scenario should fail")
	}
	if _, err := TwoVehicleScenario(StationaryTrack(geo.Pt(0, 0), 5), StationaryTrack(geo.Pt(0, 0), 6)); err == nil {
		t.Error("mismatched track lengths should fail")
	}
}

func TestStraightTrack(t *testing.T) {
	trk := StraightTrack(geo.Pt(0, 0), 3, 4, 5, 3)
	if len(trk) != 3 {
		t.Fatalf("len = %d, want 3", len(trk))
	}
	if trk[1].Dist(geo.Pt(3, 4)) > 1e-9 {
		t.Errorf("unit direction wrong: %v", trk[1])
	}
	if StraightTrack(geo.Pt(0, 0), 0, 0, 5, 3) != nil {
		t.Error("zero direction should return nil")
	}
	if StraightTrack(geo.Pt(0, 0), 1, 0, 5, 0) != nil {
		t.Error("zero samples should return nil")
	}
}

func BenchmarkGenerate100Vehicles(b *testing.B) {
	city := testCity(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(city, Config{Vehicles: 100, Seconds: 60, MeanSpeedKmh: 50, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
