// Package mobility generates vehicle movement traces over a road
// network. It substitutes for the SUMO traffic simulator that the paper
// uses to drive its ns-3 evaluation (Section 8): vehicles pick random
// trips on the street grid, drive them at a configurable speed with
// small per-vehicle variation, and immediately start a new trip on
// arrival, producing one position sample per vehicle per second.
//
// The evaluation only consumes three properties of the SUMO traces —
// per-second positions, realistic contact intervals between nearby
// vehicles, and trip continuity over tens of minutes — all of which this
// generator provides.
package mobility

import (
	"fmt"
	"math/rand"

	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
)

// VehicleID identifies a vehicle within one trace.
type VehicleID int

// Trace holds per-second positions for a fleet of vehicles.
type Trace struct {
	// Positions[v][t] is vehicle v's position at second t.
	Positions [][]geo.Point
	// Speeds[v] is vehicle v's cruising speed in m/s.
	Speeds []float64
	// Seconds is the trace duration.
	Seconds int
}

// NumVehicles returns the fleet size.
func (tr *Trace) NumVehicles() int { return len(tr.Positions) }

// At returns vehicle v's position at second t.
func (tr *Trace) At(v VehicleID, t int) geo.Point { return tr.Positions[v][t] }

// Config parameterizes trace generation.
type Config struct {
	// Vehicles is the fleet size.
	Vehicles int
	// Seconds is the trace duration.
	Seconds int
	// MeanSpeedKmh is the average cruising speed in km/h (the paper
	// sweeps 30, 50, 70 and a mix).
	MeanSpeedKmh float64
	// SpeedJitterFrac is the +/- fraction of per-vehicle speed
	// variation around the mean (default 0.15 when zero).
	SpeedJitterFrac float64
	// MixSpeeds, when true, draws each vehicle's speed uniformly from
	// {30, 50, 70} km/h, reproducing the paper's "Mix" scenario, and
	// ignores MeanSpeedKmh.
	MixSpeeds bool
	// Seed makes the trace deterministic.
	Seed int64
}

// KmhToMs converts km/h to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// Generate produces a trace of vehicles driving random trips on the
// city's road network.
func Generate(city *roadnet.City, cfg Config) (*Trace, error) {
	if cfg.Vehicles <= 0 {
		return nil, fmt.Errorf("mobility: vehicle count must be positive, got %d", cfg.Vehicles)
	}
	if cfg.Seconds <= 0 {
		return nil, fmt.Errorf("mobility: duration must be positive, got %d", cfg.Seconds)
	}
	if !cfg.MixSpeeds && cfg.MeanSpeedKmh <= 0 {
		return nil, fmt.Errorf("mobility: mean speed must be positive, got %v", cfg.MeanSpeedKmh)
	}
	jitter := cfg.SpeedJitterFrac
	if jitter == 0 {
		jitter = 0.15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{
		Positions: make([][]geo.Point, cfg.Vehicles),
		Speeds:    make([]float64, cfg.Vehicles),
		Seconds:   cfg.Seconds,
	}
	n := city.Net.NumNodes()
	for v := 0; v < cfg.Vehicles; v++ {
		meanKmh := cfg.MeanSpeedKmh
		if cfg.MixSpeeds {
			meanKmh = []float64{30, 50, 70}[rng.Intn(3)]
		}
		speed := KmhToMs(meanKmh) * (1 + (rng.Float64()*2-1)*jitter)
		tr.Speeds[v] = speed
		tr.Positions[v] = driveTrips(city, rng, speed, cfg.Seconds, n)
	}
	return tr, nil
}

// driveTrips walks random shortest-path trips back to back, emitting one
// position per second.
func driveTrips(city *roadnet.City, rng *rand.Rand, speed float64, seconds, numNodes int) []geo.Point {
	out := make([]geo.Point, 0, seconds)
	cur := roadnet.NodeID(rng.Intn(numNodes))
	var leftover float64 // distance already consumed into the next second
	for len(out) < seconds {
		dst := roadnet.NodeID(rng.Intn(numNodes))
		if dst == cur {
			continue
		}
		path, err := city.Net.ShortestPath(cur, dst)
		if err != nil {
			// Disconnected node: retry with another destination.
			continue
		}
		pts := make([]geo.Point, len(path))
		for i, id := range path {
			pts[i] = city.Net.Node(id).Pos
		}
		route := roadnet.Route{Points: pts}
		var total float64
		for i := 1; i < len(pts); i++ {
			total += pts[i-1].Dist(pts[i])
		}
		route.Length = total
		d := leftover
		for d < total && len(out) < seconds {
			out = append(out, route.At(d))
			d += speed
		}
		leftover = d - total
		if leftover < 0 {
			leftover = 0
		}
		cur = dst
	}
	return out[:seconds]
}

// ContactIntervals returns, for every ordered pair encounter in the
// trace, the contiguous number of seconds two vehicles stayed within
// range metres AND in line of sight of each other — the paper's
// "contact interval" (Fig. 22c). Each contiguous run is reported once
// per unordered pair.
func ContactIntervals(tr *Trace, obstacles *geo.ObstacleSet, rangeM float64) []int {
	var intervals []int
	n := tr.NumVehicles()
	range2 := rangeM * rangeM
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			run := 0
			for t := 0; t < tr.Seconds; t++ {
				pa, pb := tr.Positions[a][t], tr.Positions[b][t]
				inContact := pa.Dist2(pb) <= range2 && obstacles.LOS(pa, pb)
				if inContact {
					run++
				} else if run > 0 {
					intervals = append(intervals, run)
					run = 0
				}
			}
			if run > 0 {
				intervals = append(intervals, run)
			}
		}
	}
	return intervals
}

// NeighborsAt returns the vehicles within rangeM of vehicle v at second
// t with clear line of sight, i.e. those whose DSRC view digests v can
// hear under the paper's LOS-dominated propagation.
func NeighborsAt(tr *Trace, obstacles *geo.ObstacleSet, v VehicleID, t int, rangeM float64) []VehicleID {
	var out []VehicleID
	p := tr.Positions[v][t]
	range2 := rangeM * rangeM
	for u := 0; u < tr.NumVehicles(); u++ {
		if VehicleID(u) == v {
			continue
		}
		q := tr.Positions[u][t]
		if p.Dist2(q) <= range2 && obstacles.LOS(p, q) {
			out = append(out, VehicleID(u))
		}
	}
	return out
}

// TwoVehicleScenario produces a minimal trace with exactly two vehicles
// following explicitly given per-second positions. The field-experiment
// reproductions (Table 2, Fig. 15-17, Fig. 20) use it to script
// LOS/NLOS encounters.
func TwoVehicleScenario(a, b []geo.Point) (*Trace, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, fmt.Errorf("mobility: scenario tracks must be equal non-zero length (%d, %d)", len(a), len(b))
	}
	return &Trace{
		Positions: [][]geo.Point{a, b},
		Speeds:    []float64{0, 0},
		Seconds:   len(a),
	}, nil
}

// StraightTrack returns n per-second positions moving from start in
// direction (dx, dy) at speed m/s. A helper for scripted scenarios.
func StraightTrack(start geo.Point, dx, dy, speed float64, n int) []geo.Point {
	norm := geo.Pt(dx, dy).Norm()
	if norm == 0 || n <= 0 {
		return nil
	}
	ux, uy := dx/norm, dy/norm
	out := make([]geo.Point, n)
	for i := 0; i < n; i++ {
		d := speed * float64(i)
		out[i] = geo.Pt(start.X+ux*d, start.Y+uy*d)
	}
	return out
}

// StationaryTrack returns n copies of p, a parked vehicle.
func StationaryTrack(p geo.Point, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = p
	}
	return out
}
