package roadnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewmap/internal/geo"
)

func mustGrid(t testing.TB, cfg GridConfig) *City {
	t.Helper()
	c, err := BuildGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildGridCounts(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 5, Rows: 4, Spacing: 100, BuildingFill: 0.8})
	if got := c.Net.NumNodes(); got != 20 {
		t.Errorf("NumNodes = %d, want 20", got)
	}
	// Directed edges: horizontal 4*4=16 streets, vertical 5*3=15 streets,
	// each bidirectional.
	if got := c.Net.NumEdges(); got != 2*(16+15) {
		t.Errorf("NumEdges = %d, want %d", got, 2*(16+15))
	}
	// Interior blocks: (5-1)*(4-1) = 12 buildings.
	if got := c.Obstacles.Len(); got != 12 {
		t.Errorf("Obstacles = %d, want 12", got)
	}
	if c.Cols() != 5 || c.Rows() != 4 {
		t.Errorf("Cols/Rows = %d/%d, want 5/4", c.Cols(), c.Rows())
	}
}

func TestBuildGridValidation(t *testing.T) {
	cases := []GridConfig{
		{Cols: 1, Rows: 5, Spacing: 100},
		{Cols: 5, Rows: 1, Spacing: 100},
		{Cols: 5, Rows: 5, Spacing: 0},
		{Cols: 5, Rows: 5, Spacing: 100, BuildingFill: 1.5},
		{Cols: 5, Rows: 5, Spacing: 100, BuildingFill: -0.1},
	}
	for _, cfg := range cases {
		if _, err := BuildGrid(cfg); err == nil {
			t.Errorf("BuildGrid(%+v) should fail", cfg)
		}
	}
}

func TestOpenRoadHasNoObstacles(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 3, Rows: 3, Spacing: 200, BuildingFill: 0})
	if c.Obstacles.Len() != 0 {
		t.Errorf("open road should have no buildings, got %d", c.Obstacles.Len())
	}
}

func TestBuildingsBlockCrossBlockSight(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 3, Rows: 3, Spacing: 100, BuildingFill: 0.9})
	// Two points on parallel streets with a building between them.
	a := geo.Pt(50, 0)   // mid south street
	b := geo.Pt(50, 100) // mid next street north
	if c.Obstacles.LOS(a, b) {
		t.Error("building should block sight across the block")
	}
	// Along the same street: clear.
	if !c.Obstacles.LOS(geo.Pt(0, 0), geo.Pt(200, 0)) {
		t.Error("sight along a street should be clear")
	}
}

func TestShortestPathStraightLine(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 4, Rows: 4, Spacing: 100})
	a := c.NodeAt(0, 0)
	b := c.NodeAt(3, 0)
	path, err := c.Net.ShortestPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("path length = %d nodes, want 4", len(path))
	}
	if path[0] != a || path[len(path)-1] != b {
		t.Error("path endpoints wrong")
	}
}

func TestShortestPathManhattanDistance(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 6, Rows: 6, Spacing: 150})
	a := c.NodeAt(0, 0)
	b := c.NodeAt(5, 5)
	path, err := c.Net.ShortestPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var length float64
	for i := 1; i < len(path); i++ {
		length += c.Net.Node(path[i-1]).Pos.Dist(c.Net.Node(path[i]).Pos)
	}
	want := 10 * 150.0 // Manhattan distance on the grid
	if math.Abs(length-want) > 1e-9 {
		t.Errorf("path length = %v, want %v", length, want)
	}
}

func TestShortestPathSameNode(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 3, Rows: 3, Spacing: 100})
	path, err := c.Net.ShortestPath(c.NodeAt(1, 1), c.NodeAt(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Errorf("path to self should have 1 node, got %d", len(path))
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	net := &Network{}
	a := net.AddNode(geo.Pt(0, 0))
	b := net.AddNode(geo.Pt(100, 0))
	if _, err := net.ShortestPath(a, b); err != ErrNoRoute {
		t.Errorf("disconnected nodes should return ErrNoRoute, got %v", err)
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	net := &Network{}
	net.AddNode(geo.Pt(0, 0))
	if _, err := net.ShortestPath(0, 99); err == nil {
		t.Error("out-of-range node should error")
	}
	if _, err := net.ShortestPath(-1, 0); err == nil {
		t.Error("negative node should error")
	}
}

func TestNearestNode(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 3, Rows: 3, Spacing: 100})
	id := c.Net.NearestNode(geo.Pt(95, 10))
	if got := c.Net.Node(id).Pos; got != geo.Pt(100, 0) {
		t.Errorf("NearestNode = %v, want (100,0)", got)
	}
}

func TestDirections(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 5, Rows: 5, Spacing: 100})
	r, err := c.Net.Directions(geo.Pt(10, 10), geo.Pt(390, 390))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("route should pass through intersections, got %d points", len(r.Points))
	}
	if r.Points[0] != geo.Pt(10, 10) || r.Points[len(r.Points)-1] != geo.Pt(390, 390) {
		t.Error("route must start and end at the requested points")
	}
	if r.Length <= 0 {
		t.Error("route length must be positive")
	}
}

func TestDirectionsSameSnap(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 3, Rows: 3, Spacing: 1000})
	r, err := c.Net.Directions(geo.Pt(10, 10), geo.Pt(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Errorf("trivial route should be 2 points, got %d", len(r.Points))
	}
}

func TestRouteAt(t *testing.T) {
	r := Route{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(100, 100)}, Length: 200}
	if got := r.At(-5); got != geo.Pt(0, 0) {
		t.Errorf("At(-5) = %v, want origin", got)
	}
	if got := r.At(50); got != geo.Pt(50, 0) {
		t.Errorf("At(50) = %v, want (50,0)", got)
	}
	if got := r.At(150); got != geo.Pt(100, 50) {
		t.Errorf("At(150) = %v, want (100,50)", got)
	}
	if got := r.At(1e9); got != geo.Pt(100, 100) {
		t.Errorf("At(inf) = %v, want end", got)
	}
	var empty Route
	if got := empty.At(10); got != (geo.Point{}) {
		t.Errorf("empty route At = %v", got)
	}
}

func TestSamplePerSecond(t *testing.T) {
	r := Route{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(600, 0)}, Length: 600}
	samples := r.SamplePerSecond(10, 60, nil)
	if len(samples) != 60 {
		t.Fatalf("samples = %d, want 60", len(samples))
	}
	if samples[0] != geo.Pt(0, 0) {
		t.Errorf("sample[0] = %v, want origin", samples[0])
	}
	if samples[30] != geo.Pt(300, 0) {
		t.Errorf("sample[30] = %v, want (300,0)", samples[30])
	}
	// Past the end of the route the vehicle stays put.
	long := r.SamplePerSecond(20, 60, nil)
	if long[59] != geo.Pt(600, 0) {
		t.Errorf("exhausted route should repeat final point, got %v", long[59])
	}
}

func TestSamplePerSecondJitter(t *testing.T) {
	r := Route{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(600, 0)}, Length: 600}
	rng := rand.New(rand.NewSource(1))
	jit := func(i int) float64 { return rng.Float64()*10 - 5 }
	samples := r.SamplePerSecond(10, 30, jit)
	// Jittered samples stay near the nominal positions but are not all
	// exactly on them.
	moved := false
	for i, s := range samples {
		nominal := geo.Pt(10*float64(i), 0)
		if s.Dist(nominal) > 5+1e-9 {
			t.Fatalf("jitter exceeded margin at %d: %v vs %v", i, s, nominal)
		}
		if s != nominal {
			moved = true
		}
	}
	if !moved {
		t.Error("jitter should displace at least one sample")
	}
	if got := r.SamplePerSecond(10, 0, nil); got != nil {
		t.Error("zero seconds should return nil")
	}
}

// Property: a shortest path between random grid intersections never
// exceeds the Manhattan distance (which is exactly achievable on a full
// grid) and never undercuts the Euclidean distance.
func TestShortestPathBoundsProperty(t *testing.T) {
	c := mustGrid(t, GridConfig{Cols: 8, Rows: 8, Spacing: 100})
	f := func(ac, ar, bc, br uint8) bool {
		a := c.NodeAt(int(ac%8), int(ar%8))
		b := c.NodeAt(int(bc%8), int(br%8))
		path, err := c.Net.ShortestPath(a, b)
		if err != nil {
			return false
		}
		var length float64
		for i := 1; i < len(path); i++ {
			length += c.Net.Node(path[i-1]).Pos.Dist(c.Net.Node(path[i]).Pos)
		}
		pa, pb := c.Net.Node(a).Pos, c.Net.Node(b).Pos
		manhattan := math.Abs(pa.X-pb.X) + math.Abs(pa.Y-pb.Y)
		euclid := pa.Dist(pb)
		return length <= manhattan+1e-9 && length >= euclid-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShortestPath(b *testing.B) {
	c := mustGrid(b, GridConfig{Cols: 40, Rows: 40, Spacing: 200})
	a := c.NodeAt(0, 0)
	z := c.NodeAt(39, 39)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Net.ShortestPath(a, z); err != nil {
			b.Fatal(err)
		}
	}
}
