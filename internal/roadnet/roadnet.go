// Package roadnet models the street network on which the ViewMap
// simulations run. It substitutes for two external dependencies of the
// paper:
//
//   - the OpenStreetMap extract of Seoul used to drive the SUMO traffic
//     traces (Section 8) — replaced by a synthetic Manhattan-style grid
//     with building blocks between streets, and
//   - the Google Directions API used by vehicles to fabricate plausible
//     guard-VP trajectories (Section 5.1.2) — replaced by shortest-path
//     routing over the same network.
//
// The substitution preserves what the evaluation actually depends on:
// a realistic road topology for mobility, buildings that block DSRC
// line of sight, and the ability to produce a driving route between two
// arbitrary points.
package roadnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"viewmap/internal/geo"
)

// NodeID identifies an intersection in the network.
type NodeID int

// Node is a street intersection.
type Node struct {
	ID  NodeID
	Pos geo.Point
}

// Edge is a directed road segment between two intersections.
type Edge struct {
	From, To NodeID
	Length   float64 // metres
}

// Network is a directed road graph. Streets are bidirectional: the
// builders always insert both directions.
type Network struct {
	nodes []Node
	adj   [][]Edge // adjacency list indexed by NodeID
}

// NumNodes returns the number of intersections.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumEdges returns the number of directed edges.
func (n *Network) NumEdges() int {
	total := 0
	for _, es := range n.adj {
		total += len(es)
	}
	return total
}

// Node returns the node with the given id.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Neighbors returns the outgoing edges of node id.
func (n *Network) Neighbors(id NodeID) []Edge { return n.adj[id] }

// AddNode appends a node at p and returns its id.
func (n *Network) AddNode(p geo.Point) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, Node{ID: id, Pos: p})
	n.adj = append(n.adj, nil)
	return id
}

// AddStreet inserts a bidirectional street between a and b.
func (n *Network) AddStreet(a, b NodeID) {
	l := n.nodes[a].Pos.Dist(n.nodes[b].Pos)
	n.adj[a] = append(n.adj[a], Edge{From: a, To: b, Length: l})
	n.adj[b] = append(n.adj[b], Edge{From: b, To: a, Length: l})
}

// NearestNode returns the node closest to p.
func (n *Network) NearestNode(p geo.Point) NodeID {
	best := NodeID(0)
	bestD := math.Inf(1)
	for _, nd := range n.nodes {
		if d := nd.Pos.Dist(p); d < bestD {
			bestD = d
			best = nd.ID
		}
	}
	return best
}

// ErrNoRoute is returned when no path exists between the requested
// endpoints.
var ErrNoRoute = errors.New("roadnet: no route between endpoints")

// Route is a polyline along the road network.
type Route struct {
	Points []geo.Point
	Length float64
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the node sequence of the shortest path from a to
// b using Dijkstra's algorithm.
func (n *Network) ShortestPath(a, b NodeID) ([]NodeID, error) {
	if int(a) >= len(n.nodes) || int(b) >= len(n.nodes) || a < 0 || b < 0 {
		return nil, fmt.Errorf("roadnet: node out of range (%d, %d)", a, b)
	}
	dist := make([]float64, len(n.nodes))
	prev := make([]NodeID, len(n.nodes))
	done := make([]bool, len(n.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[a] = 0
	q := &pq{{node: a, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == b {
			break
		}
		for _, e := range n.adj[u] {
			if nd := dist[u] + e.Length; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[b], 1) {
		return nil, ErrNoRoute
	}
	// Reconstruct.
	var rev []NodeID
	for v := b; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == a {
			break
		}
	}
	path := make([]NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	if path[0] != a {
		return nil, ErrNoRoute
	}
	return path, nil
}

// Directions returns a driving route between two arbitrary points,
// snapping each to its nearest intersection. This is the stand-in for
// the Google Directions API that guard-VP creation uses.
func (n *Network) Directions(from, to geo.Point) (Route, error) {
	a := n.NearestNode(from)
	b := n.NearestNode(to)
	if a == b {
		return Route{Points: []geo.Point{from, to}, Length: from.Dist(to)}, nil
	}
	path, err := n.ShortestPath(a, b)
	if err != nil {
		return Route{}, err
	}
	pts := make([]geo.Point, 0, len(path)+2)
	pts = append(pts, from)
	for _, id := range path {
		pts = append(pts, n.nodes[id].Pos)
	}
	pts = append(pts, to)
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return Route{Points: pts, Length: total}, nil
}

// SamplePerSecond walks the route at the given speed (m/s) and returns
// one position per second for the requested number of seconds, starting
// at the route's first point. If the route is exhausted early, the final
// point is repeated (the vehicle "arrives and parks"). jitter, if
// non-nil, is called per sample and its return is added to the nominal
// along-route distance — the paper arranges guard-VP VDs "variably
// spaced (within the predefined margin) along the given routes" to make
// them indistinguishable from real ones.
func (r Route) SamplePerSecond(speed float64, seconds int, jitter func(i int) float64) []geo.Point {
	if seconds <= 0 || len(r.Points) == 0 {
		return nil
	}
	out := make([]geo.Point, seconds)
	for i := 0; i < seconds; i++ {
		d := speed * float64(i)
		if jitter != nil {
			d += jitter(i)
			if d < 0 {
				d = 0
			}
		}
		out[i] = r.At(d)
	}
	return out
}

// At returns the point at along-route distance d (clamped to the ends).
func (r Route) At(d float64) geo.Point {
	if len(r.Points) == 0 {
		return geo.Point{}
	}
	if d <= 0 {
		return r.Points[0]
	}
	rem := d
	for i := 1; i < len(r.Points); i++ {
		seg := geo.Seg(r.Points[i-1], r.Points[i])
		l := seg.Length()
		if rem <= l {
			if l == 0 {
				return r.Points[i]
			}
			return seg.At(rem / l)
		}
		rem -= l
	}
	return r.Points[len(r.Points)-1]
}

// GridConfig describes a synthetic Manhattan-style city.
type GridConfig struct {
	// Cols and Rows are the number of north-south and east-west streets.
	Cols, Rows int
	// Spacing is the distance between adjacent parallel streets, metres.
	Spacing float64
	// BuildingFill is the fraction (0..1) of each city block occupied by
	// a centred building footprint. 0 produces an open plain (the
	// paper's "open road" environment); values near 0.9 produce a dense
	// downtown.
	BuildingFill float64
	// Origin is the lower-left corner of the grid.
	Origin geo.Point
}

// City couples a street network with its building obstacles.
type City struct {
	Net       *Network
	Obstacles *geo.ObstacleSet
	Bounds    geo.Rect
	nodeAt    [][]NodeID // [col][row]
}

// BuildGrid constructs a synthetic city per cfg. Intersections form a
// Cols x Rows lattice joined by bidirectional streets; each interior
// block holds one rectangular building scaled by BuildingFill.
func BuildGrid(cfg GridConfig) (*City, error) {
	if cfg.Cols < 2 || cfg.Rows < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2 streets, got %dx%d", cfg.Cols, cfg.Rows)
	}
	if cfg.Spacing <= 0 {
		return nil, fmt.Errorf("roadnet: spacing must be positive, got %v", cfg.Spacing)
	}
	if cfg.BuildingFill < 0 || cfg.BuildingFill > 1 {
		return nil, fmt.Errorf("roadnet: building fill must be in [0,1], got %v", cfg.BuildingFill)
	}
	net := &Network{}
	nodeAt := make([][]NodeID, cfg.Cols)
	for c := 0; c < cfg.Cols; c++ {
		nodeAt[c] = make([]NodeID, cfg.Rows)
		for r := 0; r < cfg.Rows; r++ {
			p := geo.Pt(cfg.Origin.X+float64(c)*cfg.Spacing, cfg.Origin.Y+float64(r)*cfg.Spacing)
			nodeAt[c][r] = net.AddNode(p)
		}
	}
	for c := 0; c < cfg.Cols; c++ {
		for r := 0; r < cfg.Rows; r++ {
			if c+1 < cfg.Cols {
				net.AddStreet(nodeAt[c][r], nodeAt[c+1][r])
			}
			if r+1 < cfg.Rows {
				net.AddStreet(nodeAt[c][r], nodeAt[c][r+1])
			}
		}
	}
	obs := geo.NewObstacleSet()
	if cfg.BuildingFill > 0 {
		for c := 0; c+1 < cfg.Cols; c++ {
			for r := 0; r+1 < cfg.Rows; r++ {
				blockMin := geo.Pt(cfg.Origin.X+float64(c)*cfg.Spacing, cfg.Origin.Y+float64(r)*cfg.Spacing)
				center := blockMin.Add(geo.Pt(cfg.Spacing/2, cfg.Spacing/2))
				half := cfg.Spacing / 2 * cfg.BuildingFill
				obs.Add(geo.Building{Footprint: geo.RectAround(center, half)})
			}
		}
	}
	bounds := geo.NewRect(cfg.Origin,
		cfg.Origin.Add(geo.Pt(float64(cfg.Cols-1)*cfg.Spacing, float64(cfg.Rows-1)*cfg.Spacing)))
	return &City{Net: net, Obstacles: obs, Bounds: bounds, nodeAt: nodeAt}, nil
}

// NodeAt returns the intersection node at grid coordinate (col, row).
func (c *City) NodeAt(col, row int) NodeID { return c.nodeAt[col][row] }

// Cols returns the number of north-south streets.
func (c *City) Cols() int { return len(c.nodeAt) }

// Rows returns the number of east-west streets.
func (c *City) Rows() int {
	if len(c.nodeAt) == 0 {
		return 0
	}
	return len(c.nodeAt[0])
}
