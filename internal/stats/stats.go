// Package stats provides the statistical helpers used by the ViewMap
// evaluation: Pearson correlation (Fig. 20), Shannon entropy over belief
// distributions (Fig. 10/22a), and small aggregation utilities used by
// the benchmark harness when averaging over simulation runs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than
// two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns ErrInsufficientData when fewer than two pairs are given or
// the slices differ in length, and 0 with nil error when either series
// is constant (the coefficient is undefined; the paper's Fig. 20 never
// hits this because both events vary).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// PearsonBinary returns the phi coefficient — Pearson correlation of two
// binary event series — which is what the paper computes between "VPs
// linked" and "vehicle visible on video".
func PearsonBinary(xs, ys []bool) (float64, error) {
	fx := make([]float64, len(xs))
	fy := make([]float64, len(ys))
	for i := range xs {
		if xs[i] {
			fx[i] = 1
		}
	}
	for i := range ys {
		if ys[i] {
			fy[i] = 1
		}
	}
	return Pearson(fx, fy)
}

// Entropy returns the Shannon entropy, in bits, of the probability
// distribution p. Zero entries contribute nothing. The distribution is
// not required to be normalized; entries are used as given, matching the
// paper's definition H_t = -sum p log p over the tracker's belief.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// Normalize scales xs in place so it sums to 1. It is a no-op on an
// all-zero or empty slice and returns whether normalization happened.
func Normalize(xs []float64) bool {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return false
	}
	for i := range xs {
		xs[i] /= s
	}
	return true
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns ErrInsufficientData on
// an empty slice.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 100 {
		return sorted[len(sorted)-1], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Histogram counts xs into n equal-width bins spanning [min, max].
// Values outside the range are clamped into the first/last bin.
func Histogram(xs []float64, n int, min, max float64) []int {
	if n <= 0 || max <= min {
		return nil
	}
	bins := make([]int, n)
	w := (max - min) / float64(n)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// Series accumulates samples keyed by an integer index (e.g. time in
// minutes, or a distance bucket) and reports per-key means. It is used
// by the benchmark harness to average simulation metrics over runs.
type Series struct {
	sum   map[int]float64
	count map[int]int
}

// NewSeries returns an empty Series.
func NewSeries() *Series {
	return &Series{sum: make(map[int]float64), count: make(map[int]int)}
}

// Add records one sample for key k.
func (s *Series) Add(k int, v float64) {
	s.sum[k] += v
	s.count[k]++
}

// MeanAt returns the mean of samples at key k and whether any exist.
func (s *Series) MeanAt(k int) (float64, bool) {
	c := s.count[k]
	if c == 0 {
		return 0, false
	}
	return s.sum[k] / float64(c), true
}

// Keys returns all recorded keys in ascending order.
func (s *Series) Keys() []int {
	keys := make([]int, 0, len(s.sum))
	for k := range s.sum {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CountAt returns the number of samples recorded at key k.
func (s *Series) CountAt(k int) int { return s.count[k] }
