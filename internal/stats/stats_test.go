package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("Mean([2,4,6]) should be 4")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
	v := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Error("StdDev should be 2")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrInsufficientData {
		t.Error("expected ErrInsufficientData for length-1 input")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2, 3}); err != ErrInsufficientData {
		t.Error("expected ErrInsufficientData for mismatched lengths")
	}
	r, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("constant series should give (0, nil), got (%v, %v)", r, err)
	}
}

func TestPearsonBinary(t *testing.T) {
	xs := []bool{true, true, false, false}
	ys := []bool{true, true, false, false}
	r, err := PearsonBinary(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Errorf("identical binary series should correlate at 1, got %v", r)
	}
	opposite := []bool{false, false, true, true}
	r, _ = PearsonBinary(xs, opposite)
	if !almost(r, -1, 1e-12) {
		t.Errorf("opposite binary series should correlate at -1, got %v", r)
	}
}

func TestEntropy(t *testing.T) {
	if Entropy([]float64{1}) != 0 {
		t.Error("certain distribution has 0 entropy")
	}
	h := Entropy([]float64{0.5, 0.5})
	if !almost(h, 1, 1e-12) {
		t.Errorf("fair coin entropy = %v, want 1 bit", h)
	}
	h = Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if !almost(h, 2, 1e-12) {
		t.Errorf("uniform 4 entropy = %v, want 2 bits", h)
	}
	// Zero entries are skipped.
	if !almost(Entropy([]float64{0.5, 0, 0.5, 0}), 1, 1e-12) {
		t.Error("zero entries should not contribute to entropy")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	if !Normalize(xs) {
		t.Fatal("Normalize should succeed")
	}
	if !almost(xs[0], 0.25, 1e-12) || !almost(xs[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Error("Normalize of zeros should report false")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrInsufficientData {
		t.Error("expected ErrInsufficientData")
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 100}, 10, 0, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d, want 10", len(bins))
	}
	// Bin width 1: 0->bin0, 1->bin1, 2->bin2, 3->bin3, 9.9->bin9;
	// -5 clamps into bin 0 and 100 clamps into bin 9.
	if bins[0] != 2 {
		t.Errorf("bin0 = %d, want 2", bins[0])
	}
	if bins[9] != 2 {
		t.Errorf("bin9 = %d, want 2", bins[9])
	}
	if Histogram(nil, 0, 0, 10) != nil {
		t.Error("invalid bin count should return nil")
	}
	if Histogram(nil, 5, 10, 10) != nil {
		t.Error("empty range should return nil")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Add(1, 10)
	s.Add(1, 20)
	s.Add(3, 5)
	m, ok := s.MeanAt(1)
	if !ok || m != 15 {
		t.Errorf("MeanAt(1) = %v,%v want 15,true", m, ok)
	}
	if _, ok := s.MeanAt(2); ok {
		t.Error("MeanAt(2) should report no data")
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 3 {
		t.Errorf("Keys = %v", keys)
	}
	if s.CountAt(1) != 2 {
		t.Errorf("CountAt(1) = %d, want 2", s.CountAt(1))
	}
}

// Property: Pearson is symmetric and bounded in [-1, 1].
func TestPearsonProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(raw[i])
			ys[i] = float64(raw[n+i])
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(r1, r2, 1e-9) && r1 >= -1-1e-9 && r1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: entropy of a normalized distribution over n outcomes is
// bounded by log2(n) and non-negative.
func TestEntropyBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		if !Normalize(p) {
			return true
		}
		h := Entropy(p)
		return h >= -1e-9 && h <= math.Log2(float64(len(p)))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Normalize yields a distribution summing to 1.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = float64(v)
		}
		if !Normalize(p) {
			return true
		}
		var s float64
		for _, v := range p {
			s += v
		}
		return almost(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
