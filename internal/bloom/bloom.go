// Package bloom implements the Bloom filter that a ViewMap view profile
// (VP) carries to summarize the view digests (VDs) received from
// neighboring vehicles. The paper stores at most two VDs per neighbor —
// the first and the last received with the same VP identifier — and
// validates mutual neighborship between two VPs by membership queries of
// each VP's element VDs against the other's filter (Section 5.2.1).
//
// The false-linkage analysis of Section 6.3.2 is reproduced here:
// with a bit array of m bits, n inserted neighbor VDs and k hash
// functions, the two-way false linkage probability is
//
//	p = (1 - [1 - 1/m]^(2nk))^(2k)
//
// and the optimal hash count is k = (m/n) ln 2. The paper picks m = 2048
// bits, which keeps the false linkage rate at about 0.1% with 300
// neighbor VPs.
package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// DefaultBits is the paper's chosen filter size: 2048 bits = 256 bytes.
const DefaultBits = 2048

// Filter is a Bloom filter over byte strings. The zero value is not
// usable; construct with New or FromBytes.
type Filter struct {
	bits []byte // m/8 bytes
	m    uint32 // number of bits
	mask uint32 // m-1 when m is a power of two, else 0
	k    uint32 // number of hash functions
	n    uint32 // number of inserted elements (informational)
}

// bitMask returns m-1 when m is a power of two, else 0. Every filter
// ViewMap actually ships is power-of-two sized (2048 or 4096 bits), so
// the membership probes — the single hottest instruction sequence in
// viewmap construction — can replace the hardware divide of `% m` with
// a bitwise and.
func bitMask(m uint32) uint32 {
	if m&(m-1) == 0 {
		return m - 1
	}
	return 0
}

// OptimalK returns the optimal number of hash functions for a filter of
// m bits expected to hold n elements: k = (m/n) ln 2, at least 1.
func OptimalK(m, n int) int {
	if n <= 0 {
		n = 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return k
}

// New creates a filter with m bits and k hash functions. m is rounded up
// to a multiple of 8. It panics if m or k is non-positive; filter
// parameters are fixed at compile time in ViewMap, so this is a
// programmer error, not an input error.
func New(m, k int) *Filter {
	if m <= 0 || k <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters m=%d k=%d", m, k))
	}
	mBits := (m + 7) / 8 * 8
	return &Filter{bits: make([]byte, mBits/8), m: uint32(mBits), mask: bitMask(uint32(mBits)), k: uint32(k)}
}

// NewDefault creates the 2048-bit filter used by ViewMap VPs, sized for
// up to maxNeighbors elements with the optimal hash count.
func NewDefault(maxNeighbors int) *Filter {
	return New(DefaultBits, OptimalK(DefaultBits, maxNeighbors))
}

// FromBytes reconstructs a filter from a bit array previously obtained
// via Bytes, with the given hash count.
func FromBytes(bits []byte, k int) (*Filter, error) {
	if len(bits) == 0 || k <= 0 {
		return nil, errors.New("bloom: empty bit array or invalid k")
	}
	cp := make([]byte, len(bits))
	copy(cp, bits)
	m := uint32(len(bits) * 8)
	return &Filter{bits: cp, m: m, mask: bitMask(m), k: uint32(k)}, nil
}

// AliasBits initializes f in place over a caller-owned bit array
// WITHOUT copying it — the batch-ingest arena decodes a whole upload
// into one contiguous bit slab and carves per-profile filters out of
// it with zero allocations. The caller must not mutate bits afterwards
// (wire filters are immutable once ingested); Add through an aliased
// filter would write into the shared slab.
func (f *Filter) AliasBits(bits []byte, k int) error {
	if len(bits) == 0 || k <= 0 {
		return errors.New("bloom: empty bit array or invalid k")
	}
	m := uint32(len(bits) * 8)
	*f = Filter{bits: bits, m: m, mask: bitMask(m), k: uint32(k)}
	return nil
}

// Bits returns the number of bits m.
func (f *Filter) Bits() int { return int(f.m) }

// K returns the number of hash functions.
func (f *Filter) K() int { return int(f.k) }

// Count returns the number of elements inserted via Add.
func (f *Filter) Count() int { return int(f.n) }

// Bytes returns a copy of the underlying bit array (m/8 bytes).
func (f *Filter) Bytes() []byte {
	cp := make([]byte, len(f.bits))
	copy(cp, f.bits)
	return cp
}

// Digest derives the double-hashing pair for an element from a single
// SHA-256 digest. Bit position i is (h1 + i*h2) mod m; h2 is forced
// odd so it cycles all positions for power-of-two m. Callers that test
// the same element against many filters (viewmap construction checks
// every VD of every candidate pair) precompute the digest once.
func Digest(element []byte) (h1, h2 uint32) {
	sum := sha256.Sum256(element)
	return binary.BigEndian.Uint32(sum[0:4]), binary.BigEndian.Uint32(sum[4:8]) | 1
}

// Add inserts an element.
func (f *Filter) Add(element []byte) {
	h1, h2 := Digest(element)
	if f.mask != 0 {
		for i := uint32(0); i < f.k; i++ {
			pos := (h1 + i*h2) & f.mask
			f.bits[pos>>3] |= 1 << (pos & 7)
		}
	} else {
		for i := uint32(0); i < f.k; i++ {
			pos := (h1 + i*h2) % f.m
			f.bits[pos/8] |= 1 << (pos % 8)
		}
	}
	f.n++
}

// Test reports whether the element may be in the set. False positives
// occur with the probability analyzed in FalseLinkageRate; false
// negatives never occur.
func (f *Filter) Test(element []byte) bool {
	h1, h2 := Digest(element)
	return f.TestDigest(h1, h2)
}

// TestDigest is Test for a precomputed element digest.
func (f *Filter) TestDigest(h1, h2 uint32) bool {
	if f.mask != 0 {
		for i := uint32(0); i < f.k; i++ {
			pos := (h1 + i*h2) & f.mask
			if f.bits[pos>>3]&(1<<(pos&7)) == 0 {
				return false
			}
		}
		return true
	}
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % f.m
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// CountDigestHits returns how many of the precomputed digests test
// positive, stopping early once limit hits are found. This is the
// viewmap linkage test's bulk probe: testing sixty digests per
// direction per candidate pair through TestDigest would pay a call and
// loop setup per digest, where the overwhelmingly common outcome — the
// first probed bit is zero — needs three instructions. The first-probe
// rejection is therefore inlined here over the whole batch.
func (f *Filter) CountDigestHits(digests [][2]uint32, limit int) int {
	hits := 0
	if f.mask != 0 {
		bits, mask, k := f.bits, f.mask, f.k
		for _, d := range digests {
			pos := d[0] & mask
			if bits[pos>>3]&(1<<(pos&7)) == 0 {
				continue
			}
			in := true
			for i := uint32(1); i < k; i++ {
				pos = (d[0] + i*d[1]) & mask
				if bits[pos>>3]&(1<<(pos&7)) == 0 {
					in = false
					break
				}
			}
			if in {
				hits++
				if hits >= limit {
					return hits
				}
			}
		}
		return hits
	}
	for _, d := range digests {
		if f.TestDigest(d[0], d[1]) {
			hits++
			if hits >= limit {
				return hits
			}
		}
	}
	return hits
}

// FillRatio returns the fraction of set bits, used to detect poisoned
// (near-all-ones) filters submitted by attackers claiming universal
// neighborship (Section 6.3.2).
func (f *Filter) FillRatio() float64 {
	var set, i int
	for ; i+8 <= len(f.bits); i += 8 {
		set += bits.OnesCount64(binary.LittleEndian.Uint64(f.bits[i:]))
	}
	for ; i < len(f.bits); i++ {
		set += bits.OnesCount8(f.bits[i])
	}
	return float64(set) / float64(f.m)
}

// ExpectedFillRatio returns the fill ratio a filter of m bits and k
// hashes is expected to reach after n legitimate insertions:
// 1 - (1-1/m)^(kn). Viewmap construction flags filters whose actual
// fill significantly exceeds this as poisoning attempts.
func ExpectedFillRatio(m, k, n int) float64 {
	return 1 - math.Pow(1-1/float64(m), float64(k*n))
}

// FalsePositiveRate returns the classical single-query false positive
// probability (1 - (1-1/m)^(kn))^k for a filter of m bits, k hashes and
// n inserted elements.
func FalsePositiveRate(m, k, n int) float64 {
	return math.Pow(1-math.Pow(1-1/float64(m), float64(k*n)), float64(k))
}

// FalseLinkageRate returns the two-way false linkage probability from
// Section 6.3.2: both directions of the mutual neighborship check must
// produce a false positive. Each VP contributes up to two VDs per
// neighbor (first and last), so a filter holding n neighbors has 2n
// inserted elements and a cross-check queries up to 2 elements per side;
// the paper's closed form is
//
//	p = (1 - [1 - 1/m]^(2nk))^(2k).
func FalseLinkageRate(m, k, n int) float64 {
	return math.Pow(1-math.Pow(1-1/float64(m), float64(2*n*k)), float64(2*k))
}

// Union merges other into f in place. Both filters must have identical
// geometry (m and k).
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: geometry mismatch (%d/%d vs %d/%d)", f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// SetAll sets every bit, modelling the "all ones" fabricated filter an
// attacker might submit to claim neighborship with every VP. It exists
// for the attack models and tests; legitimate code never calls it.
func (f *Filter) SetAll() {
	for i := range f.bits {
		f.bits[i] = 0xFF
	}
}
