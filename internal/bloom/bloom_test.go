package bloom

import (
	"crypto/rand"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewRoundsBitsUp(t *testing.T) {
	f := New(10, 3)
	if f.Bits() != 16 {
		t.Errorf("Bits = %d, want 16", f.Bits())
	}
	if f.K() != 3 {
		t.Errorf("K = %d, want 3", f.K())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	for _, tc := range []struct{ m, k int }{{0, 1}, {1, 0}, {-8, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", tc.m, tc.k)
				}
			}()
			New(tc.m, tc.k)
		}()
	}
}

func TestAddTest(t *testing.T) {
	f := NewDefault(100)
	elems := [][]byte{[]byte("vd-1"), []byte("vd-2"), []byte("vd-3")}
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Test(e) {
			t.Errorf("Test(%q) = false after Add; Bloom filters must not false-negative", e)
		}
	}
	if f.Count() != 3 {
		t.Errorf("Count = %d, want 3", f.Count())
	}
	if f.Test([]byte("never-inserted-by-anyone")) {
		t.Error("unexpected false positive in nearly-empty 2048-bit filter")
	}
}

func TestOptimalK(t *testing.T) {
	if k := OptimalK(2048, 300); k != 5 {
		t.Errorf("OptimalK(2048,300) = %d, want 5 (2048/300*ln2 ≈ 4.73)", k)
	}
	if k := OptimalK(2048, 0); k < 1 {
		t.Errorf("OptimalK with n=0 must be at least 1, got %d", k)
	}
	if k := OptimalK(8, 10000); k != 1 {
		t.Errorf("OptimalK must floor at 1, got %d", k)
	}
}

func TestFromBytesRoundTrip(t *testing.T) {
	f := NewDefault(50)
	f.Add([]byte("alpha"))
	f.Add([]byte("beta"))
	g, err := FromBytes(f.Bytes(), f.K())
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() {
		t.Errorf("Bits mismatch: %d vs %d", g.Bits(), f.Bits())
	}
	if !g.Test([]byte("alpha")) || !g.Test([]byte("beta")) {
		t.Error("reconstructed filter lost members")
	}
}

func TestFromBytesErrors(t *testing.T) {
	if _, err := FromBytes(nil, 3); err == nil {
		t.Error("FromBytes(nil) should fail")
	}
	if _, err := FromBytes([]byte{1}, 0); err == nil {
		t.Error("FromBytes with k=0 should fail")
	}
}

func TestBytesIsACopy(t *testing.T) {
	f := NewDefault(10)
	f.Add([]byte("x"))
	b := f.Bytes()
	for i := range b {
		b[i] = 0
	}
	if !f.Test([]byte("x")) {
		t.Error("mutating Bytes() result must not affect the filter")
	}
}

func TestUnion(t *testing.T) {
	a := New(2048, 5)
	b := New(2048, 5)
	a.Add([]byte("one"))
	b.Add([]byte("two"))
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test([]byte("one")) || !a.Test([]byte("two")) {
		t.Error("union should contain members of both filters")
	}
	c := New(1024, 5)
	if err := a.Union(c); err == nil {
		t.Error("union of mismatched geometry should fail")
	}
}

func TestSetAllAndFillRatio(t *testing.T) {
	f := New(2048, 5)
	if f.FillRatio() != 0 {
		t.Error("fresh filter should have fill ratio 0")
	}
	f.SetAll()
	if f.FillRatio() != 1 {
		t.Error("SetAll should yield fill ratio 1")
	}
	if !f.Test([]byte("anything at all")) {
		t.Error("all-ones filter must match everything")
	}
}

func TestExpectedFillRatio(t *testing.T) {
	// After many insertions the expected fill approaches 1.
	if r := ExpectedFillRatio(2048, 5, 10000); r < 0.99 {
		t.Errorf("expected fill for huge n = %v, want ~1", r)
	}
	if r := ExpectedFillRatio(2048, 5, 0); r != 0 {
		t.Errorf("expected fill for n=0 = %v, want 0", r)
	}
	// Empirical fill should be near the analytic expectation.
	f := New(2048, 5)
	for i := 0; i < 200; i++ {
		f.Add([]byte(fmt.Sprintf("neighbor-%d", i)))
	}
	want := ExpectedFillRatio(2048, 5, 200)
	if math.Abs(f.FillRatio()-want) > 0.05 {
		t.Errorf("empirical fill %v deviates from analytic %v", f.FillRatio(), want)
	}
}

func TestFalseLinkageRateMatchesPaper(t *testing.T) {
	// Paper Section 6.3.2 claims ~0.1% at m=2048, n=300; the printed
	// closed form with integer optimal k evaluates to ~7%, an internal
	// inconsistency in the paper (see EXPERIMENTS.md). We assert the
	// properties the figure actually demonstrates: the rate is small and
	// shrinks as m grows.
	k := OptimalK(2048, 300)
	p := FalseLinkageRate(2048, k, 300)
	if p <= 0 || p > 0.1 {
		t.Errorf("false linkage rate at m=2048,n=300 = %v, want a small positive value", p)
	}
	// Larger filters strictly reduce the rate.
	if FalseLinkageRate(4096, OptimalK(4096, 300), 300) >= p {
		t.Error("m=4096 should have lower false linkage rate than m=2048")
	}
}

func TestFalsePositiveRateMonotonicInN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{10, 50, 100, 200, 400} {
		p := FalsePositiveRate(2048, 5, n)
		if p < prev {
			t.Errorf("false positive rate should grow with n: p(%d)=%v < %v", n, p, prev)
		}
		prev = p
	}
}

func TestEmpiricalFalsePositiveRate(t *testing.T) {
	// Insert n random elements, probe with fresh random elements, and
	// compare the observed false positive rate with the analytic one.
	const m, n, probes = 2048, 300, 20000
	k := OptimalK(m, n)
	f := New(m, k)
	buf := make([]byte, 16)
	for i := 0; i < n; i++ {
		if _, err := rand.Read(buf); err != nil {
			t.Fatal(err)
		}
		f.Add(buf)
	}
	hits := 0
	for i := 0; i < probes; i++ {
		if _, err := rand.Read(buf); err != nil {
			t.Fatal(err)
		}
		if f.Test(buf) {
			hits++
		}
	}
	observed := float64(hits) / probes
	analytic := FalsePositiveRate(m, k, n)
	if observed > analytic*3+0.01 {
		t.Errorf("observed FP rate %v far above analytic %v", observed, analytic)
	}
}

// Property: no false negatives, ever.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := NewDefault(250)
	prop := func(elem []byte) bool {
		f.Add(elem)
		return f.Test(elem)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: union is a superset of both operands.
func TestUnionSupersetProperty(t *testing.T) {
	prop := func(as, bs [][]byte) bool {
		a := New(2048, 5)
		b := New(2048, 5)
		for _, e := range as {
			a.Add(e)
		}
		for _, e := range bs {
			b.Add(e)
		}
		u := New(2048, 5)
		if err := u.Union(a); err != nil {
			return false
		}
		if err := u.Union(b); err != nil {
			return false
		}
		for _, e := range as {
			if !u.Test(e) {
				return false
			}
		}
		for _, e := range bs {
			if !u.Test(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewDefault(250)
	elem := []byte("benchmark-element-0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(elem)
	}
}

func BenchmarkTest(b *testing.B) {
	f := NewDefault(250)
	for i := 0; i < 250; i++ {
		f.Add([]byte(fmt.Sprintf("neighbor-%d", i)))
	}
	elem := []byte("neighbor-125")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Test(elem)
	}
}
