package attack

import (
	"math/rand"
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

func TestCloneDummiesStructure(t *testing.T) {
	pop := population(t, 80, 21, geo.Pt(100, 100))
	rng := rand.New(rand.NewSource(3))
	var base *vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			base = p
			break
		}
	}
	clones, err := CloneDummies(base, pop, 10, core.DefaultDSRCRange, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(clones) != 9 {
		t.Fatalf("clones = %d, want 9", len(clones))
	}
	for i, c := range clones {
		if !c.Complete() {
			t.Fatalf("clone %d incomplete", i)
		}
		// Co-trajectory: every sample within metres of the base.
		for s := range c.VDs {
			if d := c.VDs[s].L.Dist(base.VDs[s].L); d > 10 {
				t.Fatalf("clone %d strays %v m from the base trajectory", i, d)
			}
		}
		// Honestly linked to the base.
		if !vp.MutualNeighbors(base, c, core.DefaultDSRCRange) {
			t.Fatalf("clone %d not linked to base", i)
		}
	}
	// Clones are linked to each other.
	if !vp.MutualNeighbors(clones[0], clones[1], core.DefaultDSRCRange) {
		t.Error("clones should be mutually linked")
	}
}

func TestCloneDummiesTrivial(t *testing.T) {
	pop := population(t, 10, 22, geo.Pt(0, 0))
	rng := rand.New(rand.NewSource(1))
	clones, err := CloneDummies(pop[0], pop, 1, core.DefaultDSRCRange, rng)
	if err != nil {
		t.Fatal(err)
	}
	if clones != nil {
		t.Error("n=1 means the base alone; no clones")
	}
}

func TestHopQuantilesOrdering(t *testing.T) {
	pop := population(t, 150, 23, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	ordered, hops, err := HopQuantiles(pop, site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ordered) != len(hops) || len(ordered) == 0 {
		t.Fatalf("ordering sizes wrong: %d/%d", len(ordered), len(hops))
	}
	for i := 1; i < len(hops); i++ {
		if hops[i] < hops[i-1] {
			t.Fatal("hops must be ascending")
		}
	}
	for _, p := range ordered {
		if p.Trusted {
			t.Fatal("trusted VP must not appear in the ordering")
		}
	}
}

func TestPickQuantileBand(t *testing.T) {
	pop := population(t, 150, 24, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	ordered, hops, err := HopQuantiles(pop, site, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	low := PickQuantileBand(ordered, 0, 0.2, 3, rng)
	high := PickQuantileBand(ordered, 0.8, 1, 3, rng)
	if len(low) == 0 || len(high) == 0 {
		t.Fatal("bands should be populated")
	}
	// Members of the low band sit at smaller hop distances than the
	// high band's.
	hopOf := func(p *vp.Profile) int {
		for i, q := range ordered {
			if q == p {
				return hops[i]
			}
		}
		t.Fatal("profile missing from ordering")
		return -1
	}
	for _, lp := range low {
		for _, hp := range high {
			if hopOf(lp) > hopOf(hp) {
				t.Fatal("band ordering violated")
			}
		}
	}
	// Degenerate band.
	if got := PickQuantileBand(ordered, 0.5, 0.5, 3, rng); got != nil {
		t.Error("empty band should return nil")
	}
	// Oversized count returns the whole band.
	all := PickQuantileBand(ordered, 0, 1, len(ordered)+10, rng)
	if len(all) != len(ordered) {
		t.Errorf("oversized count should return the band, got %d", len(all))
	}
}
