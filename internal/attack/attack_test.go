package attack

import (
	"testing"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// population builds an honestly linked population of n VPs in a
// 3x3 km area with the trusted VP near the given point.
func population(t testing.TB, n int, seed int64, trustedNear geo.Point) []*vp.Profile {
	t.Helper()
	area := geo.NewRect(geo.Pt(0, 0), geo.Pt(3000, 3000))
	profiles, err := core.SynthesizeLegitimate(core.SynthConfig{N: n, Area: area, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	core.MarkTrustedNearest(profiles, trustedNear)
	return profiles
}

func TestLaunchValidation(t *testing.T) {
	site := geo.RectAround(geo.Pt(1500, 1500), 150)
	if _, err := Launch(nil, Config{Site: site, FakeCount: 10}); err == nil {
		t.Error("no owned VPs should fail")
	}
	pop := population(t, 10, 1, geo.Pt(0, 0))
	if _, err := Launch(pop[:1], Config{Site: site, FakeCount: 0}); err == nil {
		t.Error("zero fakes should fail")
	}
}

func TestCampaignStructure(t *testing.T) {
	pop := population(t, 50, 2, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(2800, 2800), 150)
	// Owner far from the site: chain needed.
	var owned *vp.Profile
	for _, p := range pop {
		if !p.Trusted && p.FinalLocation().Dist(site.Center()) > 1500 {
			owned = p
			break
		}
	}
	if owned == nil {
		t.Skip("no suitable owned VP for this seed")
	}
	camp, err := Launch([]*vp.Profile{owned}, Config{Site: site, FakeCount: 30, Minute: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Fakes) != 30 {
		t.Fatalf("launched %d fakes, want 30", len(camp.Fakes))
	}
	for _, f := range camp.Fakes {
		if !camp.IsFake(f.ID()) {
			t.Error("campaign must index its own fakes")
		}
		if f.Trusted {
			t.Error("fakes must not be trusted")
		}
	}
	// The chain must reach the site: at least one fake claims the site.
	reached := false
	for _, f := range camp.Fakes {
		if f.EntersArea(site) {
			reached = true
			break
		}
	}
	if !reached {
		t.Error("no fake VP reached the investigation site")
	}
	// Consecutive chain nodes must satisfy the claimed-proximity rule.
	prev := owned
	for _, f := range camp.Fakes {
		if !vp.MutualNeighbors(prev, f, core.DefaultDSRCRange) {
			// Cluster nodes link to the site-entry node instead of
			// their predecessor; only require chain prefix continuity.
			break
		}
		prev = f
	}
}

func TestEvaluateRejectsChainAttack(t *testing.T) {
	pop := population(t, 150, 4, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	// Attacker owns a random non-trusted VP.
	var owned *vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			owned = p
			break
		}
	}
	camp, err := Launch([]*vp.Profile{owned}, Config{Site: site, FakeCount: 100, Minute: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(pop, camp, site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.InSiteFakes == 0 {
		t.Fatal("attack should place fakes in the site")
	}
	if !out.Success() {
		t.Errorf("verification should reject all fakes: %d accepted", out.FakeAccepted)
	}
	if out.LegitAccepted == 0 && out.InSiteLegit > 0 {
		t.Error("verification should still accept legitimate in-site VPs")
	}
}

func TestEvaluateColludingAttack(t *testing.T) {
	pop := population(t, 150, 6, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	var owned []*vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			owned = append(owned, p)
			if len(owned) == 5 {
				break
			}
		}
	}
	camp, err := Launch(owned, Config{Site: site, FakeCount: 200, Colluding: true, Minute: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Evaluate(pop, camp, site, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Errorf("colluding attack should still be rejected: %d fakes accepted", out.FakeAccepted)
	}
}

func TestMoreFakesDoNotHelp(t *testing.T) {
	// Corollary 1: injecting more fakes dilutes per-fake trust. The
	// attack should fail at every injection volume.
	pop := population(t, 120, 8, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	var owned *vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			owned = p
			break
		}
	}
	for _, n := range []int{50, 150, 400} {
		camp, err := Launch([]*vp.Profile{owned}, Config{Site: site, FakeCount: n, Minute: 0, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Evaluate(pop, camp, site, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Success() {
			t.Errorf("attack with %d fakes succeeded", n)
		}
	}
}

func TestPickOwnedByHops(t *testing.T) {
	pop := population(t, 200, 10, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	near, err := PickOwnedByHops(pop, site, 0, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(near) == 0 || len(near) > 2 {
		t.Fatalf("picked %d owned VPs", len(near))
	}
	for _, p := range near {
		if p.Trusted {
			t.Error("picked the trusted VP itself")
		}
	}
	if _, err := PickOwnedByHops(pop, site, 0, 500, 600, 1); err == nil {
		t.Error("unreachable hop range should fail")
	}
}

func BenchmarkEvaluateAttack(b *testing.B) {
	pop := population(b, 100, 11, geo.Pt(100, 100))
	site := geo.RectAround(geo.Pt(1500, 1500), 200)
	var owned *vp.Profile
	for _, p := range pop {
		if !p.Trusted {
			owned = p
			break
		}
	}
	camp, err := Launch([]*vp.Profile{owned}, Config{Site: site, FakeCount: 100, Minute: 0, Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(pop, camp, site, 0); err != nil {
			b.Fatal(err)
		}
	}
}
