package attack

// This file moves the adversary online. Launch and Evaluate exercise
// campaigns against in-memory populations with batch core.Build; the
// Online driver pushes the same campaigns through the untrusted wire
// surface instead — client.API uploads against a live server.System —
// and scores them through the per-VP verdict report endpoint. The
// serving path (sharded store, link-on-ingest, cached viewmaps,
// verdict cache) therefore faces the §6.3/§8 adversary directly, and
// a campaign becomes a reusable online workload rather than a one-off
// figure generator (sim.AttackServing orchestrates the scenarios).

import (
	"fmt"

	"viewmap/internal/client"
	"viewmap/internal/geo"
	"viewmap/internal/vp"
)

// Online drives attack campaigns through the live HTTP serving path.
type Online struct {
	// API is the wire client all uploads and reports go through.
	API *client.API
	// Token authenticates trusted uploads and report requests.
	Token string
	// BatchSize is the number of profiles per batched upload; zero
	// selects 64.
	BatchSize int
}

func (o *Online) batchSize() int {
	if o.BatchSize <= 0 {
		return 64
	}
	return o.BatchSize
}

// SeedPopulation uploads an honest population over the wire: trusted
// profiles go through the authority endpoint (the trusted flag never
// rides the anonymous format), the rest as batched anonymous uploads.
// It returns the number of profiles the server accepted.
func (o *Online) SeedPopulation(pop []*vp.Profile) (int, error) {
	stored := 0
	anon := make([]*vp.Profile, 0, len(pop))
	for _, p := range pop {
		if p.Trusted {
			if err := o.API.UploadTrustedVP(o.Token, p); err != nil {
				return stored, fmt.Errorf("attack: trusted upload: %w", err)
			}
			stored++
			continue
		}
		anon = append(anon, p)
	}
	res, err := o.Upload(anon)
	if err != nil {
		return stored, err
	}
	return stored + res.Stored, nil
}

// Upload pushes profiles through the batched anonymous endpoint and
// accumulates the per-profile outcome counts.
func (o *Online) Upload(profiles []*vp.Profile) (client.BatchUploadResult, error) {
	var total client.BatchUploadResult
	bs := o.batchSize()
	for off := 0; off < len(profiles); off += bs {
		end := min(off+bs, len(profiles))
		res, err := o.API.UploadVPBatch(profiles[off:end])
		if err != nil {
			return total, fmt.Errorf("attack: batch upload: %w", err)
		}
		total.Stored += res.Stored
		total.Duplicates += res.Duplicates
		total.Rejected += res.Rejected
	}
	return total, nil
}

// Inject uploads a campaign's fakes interleaved batch-by-batch with
// honest traffic: one honest batch, one fake batch, until both streams
// drain — the upload pattern a real attacker hides in, and the
// nastiest interleaving for link-on-ingest (fake chains attach to a
// half-built honest graph). Pass a nil honest stream for a pure flood.
func (o *Online) Inject(camp *Campaign, honest []*vp.Profile) (client.BatchUploadResult, error) {
	var total client.BatchUploadResult
	bs := o.batchSize()
	fakes := camp.Fakes
	for len(fakes) > 0 || len(honest) > 0 {
		if len(honest) > 0 {
			end := min(bs, len(honest))
			res, err := o.Upload(honest[:end])
			if err != nil {
				return total, err
			}
			honest = honest[end:]
			total.Stored += res.Stored
			total.Duplicates += res.Duplicates
			total.Rejected += res.Rejected
		}
		if len(fakes) > 0 {
			end := min(bs, len(fakes))
			res, err := o.Upload(fakes[:end])
			if err != nil {
				return total, err
			}
			fakes = fakes[end:]
			total.Stored += res.Stored
			total.Duplicates += res.Duplicates
			total.Rejected += res.Rejected
		}
	}
	return total, nil
}

// WireView returns the campaign as the server sees it: every fake
// round-tripped through the anonymous wire format, which quantizes
// trajectory positions to float32. An offline Evaluate cross-checked
// against an online run must grade this view (over an equally
// round-tripped population) — the in-memory originals differ by
// sub-metre rounding, which is enough to flip a borderline
// site-membership or proximity test.
func (c *Campaign) WireView() (*Campaign, error) {
	out := &Campaign{Owned: c.Owned, fakeIDs: c.fakeIDs}
	out.Fakes = make([]*vp.Profile, len(c.Fakes))
	for i, f := range c.Fakes {
		w, err := vp.Unmarshal(f.Marshal())
		if err != nil {
			return nil, fmt.Errorf("attack: wire view of fake %d: %w", i, err)
		}
		out.Fakes[i] = w
	}
	return out, nil
}

// AdmittedWireView is WireView restricted to the fakes that pass the
// server's §5.1.1 admission validation, with the count turned away.
// A campaign can trip the admission gate with its own structure: the
// dense in-site hub of a large chain campaign accumulates so many
// cluster links that its neighbor filter exceeds the plausible fill
// cap — the Bloom-poisoning defense firing on the attacker's hub —
// and the store rejects it at the door. Offline cross-checks against
// an online run must therefore grade the admitted set; the rejected
// count is separately asserted against the wire upload result.
func (c *Campaign) AdmittedWireView() (*Campaign, int, error) {
	wire, err := c.WireView()
	if err != nil {
		return nil, 0, err
	}
	admitted := wire.Fakes[:0]
	rejected := 0
	for _, f := range wire.Fakes {
		if f.Validate() != nil {
			rejected++
			continue
		}
		admitted = append(admitted, f)
	}
	wire.Fakes = admitted
	return wire, rejected, nil
}

// Score grades the campaign through the wire: it fetches the per-VP
// verdict report for (site, minute) and counts exactly what Evaluate
// counts offline — in-site fakes and legitimate VPs, and how many of
// each the verdict accepted.
func (o *Online) Score(camp *Campaign, site geo.Rect, minute int64) (Outcome, error) {
	rep, err := o.API.InvestigateReport(o.Token, site.Min.X, site.Min.Y, site.Max.X, site.Max.Y, minute)
	if err != nil {
		return Outcome{}, fmt.Errorf("attack: scoring report: %w", err)
	}
	var out Outcome
	for _, v := range rep.Verdicts {
		fake := camp.IsFake(v.ID)
		if v.InSite {
			if fake {
				out.InSiteFakes++
			} else {
				out.InSiteLegit++
			}
		}
		if v.Legitimate {
			if fake {
				out.FakeAccepted++
			} else {
				out.LegitAccepted++
			}
		}
	}
	return out, nil
}
