// Package attack implements the adversary models of Sections 6.3 and 8:
// colluding attackers who hold legitimate VPs on a viewmap and inject
// large numbers of fake VPs cheating locations and times, hoping the
// system solicits (and pays for) fabricated evidence.
//
// The structural constraints the paper identifies shape everything
// here. Two-way linkage validation means a fake VP cannot obtain an
// edge to an honest user's VP — only to other attacker-controlled VPs.
// The time-aligned proximity check precludes long-distance edges, so
// an attacker whose legitimate VP sits away from the investigation
// site must build a *chain* of fake VPs marching toward the site.
// Colluding attackers additionally cross-link their fake clusters to
// pool trust mass (Lemma 2).
package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// Campaign is one prepared attack: the attacker-owned legitimate VPs
// plus the fake VPs to inject into the VP database.
type Campaign struct {
	// Owned are the attackers' legitimate profiles (already part of the
	// honest population and properly linked).
	Owned []*vp.Profile
	// Fakes are the injected profiles, in creation order.
	Fakes []*vp.Profile
	// fakeIDs indexes the fakes for verdict scoring.
	fakeIDs map[vd.VPID]bool
}

// IsFake reports whether the identifier belongs to an injected VP.
func (c *Campaign) IsFake(id vd.VPID) bool { return c.fakeIDs[id] }

// Config parameterizes an attack campaign.
type Config struct {
	// Site is the investigation site the fakes must reach (publicly
	// unknown to real attackers; the experiments grant it to model the
	// worst case, as the paper does).
	Site geo.Rect
	// FakeCount is the total number of fake VPs to inject.
	FakeCount int
	// ChainSpacing is the distance between consecutive chain VPs;
	// zero selects 300 m (inside the 400 m proximity limit).
	ChainSpacing float64
	// Colluding links the attackers' fake clusters to each other,
	// modelling attackers who "share their fake VPs to increase their
	// trust scores".
	Colluding bool
	// Minute is the unit-time window under attack.
	Minute int64
	// Seed drives fake placement.
	Seed int64
}

// Launch fabricates the fake VPs for a set of attacker-owned
// legitimate profiles. Each owned profile anchors a chain of fakes
// stepping from the attacker's true position to the site; remaining
// budget is spent on in-site fakes linked into the chains. Fake VPs
// within one attacker's cluster are mutually linked (the attacker
// controls both filters); across attackers only when Colluding.
func Launch(owned []*vp.Profile, cfg Config) (*Campaign, error) {
	if len(owned) == 0 {
		return nil, errors.New("attack: need at least one attacker-owned legitimate VP")
	}
	if cfg.FakeCount <= 0 {
		return nil, fmt.Errorf("attack: fake count must be positive, got %d", cfg.FakeCount)
	}
	if cfg.ChainSpacing <= 0 {
		cfg.ChainSpacing = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	camp := &Campaign{Owned: owned, fakeIDs: make(map[vd.VPID]bool)}

	target := cfg.Site.Center()
	// Fake budget split evenly across attackers.
	per := cfg.FakeCount / len(owned)
	extra := cfg.FakeCount % len(owned)
	var siteEntry []*vp.Profile // last chain node per attacker (in site), for collusion links
	for ai, own := range owned {
		budget := per
		if ai < extra {
			budget++
		}
		if budget == 0 {
			continue
		}
		chain, err := buildChain(own, target, cfg.ChainSpacing, cfg.Minute, budget, rng)
		if err != nil {
			return nil, err
		}
		for _, f := range chain {
			camp.fakeIDs[f.ID()] = true
		}
		camp.Fakes = append(camp.Fakes, chain...)
		if len(chain) > 0 {
			siteEntry = append(siteEntry, chain[len(chain)-1])
		}
	}
	if cfg.Colluding && len(siteEntry) > 1 {
		// Cross-link the attackers' site clusters: all of them claim
		// positions in/near the site, so claimed proximity holds.
		for i := 0; i < len(siteEntry); i++ {
			for j := i + 1; j < len(siteEntry); j++ {
				if err := vp.LinkMutually(siteEntry[i], siteEntry[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return camp, nil
}

// buildChain fabricates `budget` fakes for one attacker: a chain from
// the owned VP's real position toward the target, then a cluster
// saturating the site. Consecutive profiles are mutually linked; every
// in-site fake links to the chain head reaching the site.
func buildChain(own *vp.Profile, target geo.Point, spacing float64, minute int64, budget int, rng *rand.Rand) ([]*vp.Profile, error) {
	start := own.FinalLocation()
	dir := target.Sub(start)
	dist := dir.Norm()
	hops := 0
	if dist > 0 {
		hops = int(dist / spacing)
	}
	out := make([]*vp.Profile, 0, budget)
	prev := own
	for i := 0; i < budget; i++ {
		var pos geo.Point
		if i < hops {
			// Chain link stepping toward the site.
			t := float64(i+1) * spacing / dist
			if t > 1 {
				t = 1
			}
			pos = start.Lerp(target, t)
		} else {
			// In-site cluster with mild scatter.
			pos = target.Add(geo.Pt(rng.Float64()*100-50, rng.Float64()*100-50))
		}
		track := make([]geo.Point, vd.SegmentSeconds)
		for s := range track {
			track[s] = pos
		}
		f, err := core.FabricateProfile(track, minute, 0, rng)
		if err != nil {
			return nil, err
		}
		if err := vp.LinkMutually(prev, f); err != nil {
			return nil, err
		}
		// Fakes inside the cluster also link back to the first in-site
		// node, maximizing internal connectivity (the attacker's best
		// strategy per Corollary 1 is dense linking).
		if i > hops && len(out) > hops {
			if err := vp.LinkMutually(out[hops], f); err != nil {
				return nil, err
			}
		}
		out = append(out, f)
		prev = f
	}
	return out, nil
}

// Outcome scores one verification run against the campaign.
type Outcome struct {
	// FakeAccepted counts injected VPs the verdict marked legitimate.
	FakeAccepted int
	// LegitAccepted counts genuine VPs marked legitimate.
	LegitAccepted int
	// InSiteFakes counts injected VPs that made it into the viewmap and
	// claimed the site.
	InSiteFakes int
	// InSiteLegit counts genuine in-site VPs.
	InSiteLegit int
}

// Success reports whether the verification run counts as accurate in
// the paper's sense: the legitimate set contains no fake VP.
func (o Outcome) Success() bool { return o.FakeAccepted == 0 }

// Evaluate builds the viewmap over the honest population plus the
// campaign's fakes, runs Algorithm 1, and scores the verdict.
func Evaluate(population []*vp.Profile, camp *Campaign, site geo.Rect, minute int64) (Outcome, error) {
	all := make([]*vp.Profile, 0, len(population)+len(camp.Fakes))
	all = append(all, population...)
	all = append(all, camp.Fakes...)
	vm, err := core.Build(all, core.BuildConfig{Site: site, Minute: minute})
	if err != nil {
		return Outcome{}, err
	}
	inSite := vm.InSite(site)
	verdict, err := vm.VerifySite(inSite, core.TrustRankConfig{})
	if err != nil {
		return Outcome{}, err
	}
	var o Outcome
	for _, i := range inSite {
		if camp.IsFake(vm.Profiles[i].ID()) {
			o.InSiteFakes++
		} else {
			o.InSiteLegit++
		}
	}
	for _, i := range verdict.Legitimate {
		if camp.IsFake(vm.Profiles[i].ID()) {
			o.FakeAccepted++
		} else {
			o.LegitAccepted++
		}
	}
	return o, nil
}

// PickOwnedByHops selects attacker-owned profiles whose hop distance
// from the trusted VP falls inside [minHops, maxHops] — the x-axis of
// Fig. 12. It builds a throwaway viewmap over the population to measure
// hop distances.
func PickOwnedByHops(population []*vp.Profile, site geo.Rect, minute int64, minHops, maxHops, count int) ([]*vp.Profile, error) {
	vm, err := core.Build(population, core.BuildConfig{Site: site, Minute: minute})
	if err != nil {
		return nil, err
	}
	hops := vm.HopsFromTrusted()
	var out []*vp.Profile
	for i, h := range hops {
		if h >= minHops && h <= maxHops && !vm.Profiles[i].Trusted {
			out = append(out, vm.Profiles[i])
			if len(out) == count {
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("attack: no profiles at hop distance %d..%d", minHops, maxHops)
	}
	return out, nil
}

// HopQuantiles computes, once per population, the viewmap hop distance
// of every reachable non-trusted profile, sorted ascending. The
// attacker-position sweeps slice this into quantile bands so every
// band is populated regardless of the graph's diameter.
//
// Profiles whose trajectories enter the investigation site are
// excluded: an attacker who was physically at the incident holds an
// in-site legitimate VP and trivially gets its fakes accepted — the
// rare special case the paper acknowledges separately ("attackers
// cannot predict the future") — and would otherwise contaminate the
// position sweep, since hop distance from the trusted VP correlates
// with proximity to the site.
func HopQuantiles(population []*vp.Profile, site geo.Rect, minute int64) ([]*vp.Profile, []int, error) {
	vm, err := core.Build(population, core.BuildConfig{Site: site, Minute: minute})
	if err != nil {
		return nil, nil, err
	}
	hops := vm.HopsFromTrusted()
	type entry struct {
		p *vp.Profile
		h int
	}
	var entries []entry
	for i, h := range hops {
		if h > 0 && !vm.Profiles[i].Trusted && !vm.Profiles[i].EntersArea(site) {
			entries = append(entries, entry{vm.Profiles[i], h})
		}
	}
	if len(entries) == 0 {
		return nil, nil, errors.New("attack: no reachable non-trusted profiles")
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].h < entries[j].h })
	profiles := make([]*vp.Profile, len(entries))
	hopsOut := make([]int, len(entries))
	for i, e := range entries {
		profiles[i] = e.p
		hopsOut[i] = e.h
	}
	return profiles, hopsOut, nil
}

// CloneDummies models the Fig. 13 concentration attacker: one vehicle
// carrying many dummy recorders, so all its dummy VPs share (nearly)
// one trajectory. It fabricates n-1 profiles jittered around base's
// track, honestly linked to each other, to base, and to every
// population profile the trajectory actually neighbored — these VPs
// are legitimately created at real positions and pass every check.
// The returned clones must be added to the VP population before
// evaluation.
func CloneDummies(base *vp.Profile, population []*vp.Profile, n int, rangeM float64, rng *rand.Rand) ([]*vp.Profile, error) {
	if n <= 1 {
		return nil, nil
	}
	track := make([]geo.Point, len(base.VDs))
	clones := make([]*vp.Profile, 0, n-1)
	for c := 0; c < n-1; c++ {
		for i := range base.VDs {
			// A few metres of jitter: recorders in the same car.
			track[i] = base.VDs[i].L.Add(geo.Pt(rng.Float64()*6-3, rng.Float64()*6-3))
		}
		p, err := core.FabricateProfile(track, base.Minute(), 0, rng)
		if err != nil {
			return nil, err
		}
		clones = append(clones, p)
	}
	// Honest linkage: clones with base, with each other, and with the
	// population profiles base's trajectory neighbors.
	for i, c := range clones {
		if err := vp.LinkMutually(base, c); err != nil {
			return nil, err
		}
		for _, d := range clones[i+1:] {
			if err := vp.LinkMutually(c, d); err != nil {
				return nil, err
			}
		}
	}
	for _, pop := range population {
		if pop == base || pop.Minute() != base.Minute() {
			continue
		}
		near := false
		range2 := rangeM * rangeM
		for s := range base.VDs {
			if s < len(pop.VDs) && base.VDs[s].L.Dist2(pop.VDs[s].L) <= range2 {
				near = true
				break
			}
		}
		if !near {
			continue
		}
		for _, c := range clones {
			if err := vp.LinkMutually(pop, c); err != nil {
				return nil, err
			}
		}
	}
	return clones, nil
}

// PickQuantileBand selects `count` profiles at random from the
// [loQ, hiQ) quantile band of a HopQuantiles ordering.
func PickQuantileBand(ordered []*vp.Profile, loQ, hiQ float64, count int, rng *rand.Rand) []*vp.Profile {
	n := len(ordered)
	lo := int(loQ * float64(n))
	hi := int(hiQ * float64(n))
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return nil
	}
	band := ordered[lo:hi]
	if count >= len(band) {
		out := make([]*vp.Profile, len(band))
		copy(out, band)
		return out
	}
	out := make([]*vp.Profile, 0, count)
	for _, idx := range rng.Perm(len(band))[:count] {
		out = append(out, band[idx])
	}
	return out
}
