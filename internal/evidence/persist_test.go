package evidence

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"viewmap/internal/anon"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
)

func TestBoardSaveLoadRoundTrip(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()

	// Two owners in different minutes: one delivered and partially
	// paid out, one still open.
	delivered := recordOwner(t, 0, 40)
	open := recordOwner(t, 1, 41)
	src.put(delivered.p)
	src.put(open.p)
	site := geo.NewRect(geo.Pt(0, -50), geo.Pt(700, 50))
	if _, err := svc.Open(site, 0, []vd.VPID{delivered.p.ID()}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Open(site, 1, []vd.VPID{open.p.ID()}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Deliver(session(t, sessions), delivered.p.ID(), delivered.q, delivered.chunks); err != nil {
		t.Fatal(err)
	}
	// Withdraw one of the three units before the "restart".
	withdraw(t, svc, sessions, delivered, 1)

	var buf bytes.Buffer
	if err := svc.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh service over the same store and bank.
	restarted, err := NewService(Config{FrameWidth: 160, FrameHeight: 90}, src, svc.bank)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.LoadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The open offer survived; the delivered entry did not reopen.
	board := restarted.Board()
	if len(board) != 1 || board[0].ID != open.p.ID() || board[0].Units != 2 {
		t.Fatalf("board after restart = %+v", board)
	}

	// The accepted delivery is still releasable, and its bytes still
	// cascade-verify — the stored copy crossed the restart bit-exact.
	chunks, frames, _, err := restarted.Release(delivered.p.ID())
	if err != nil {
		t.Fatal(err)
	}
	if frames != 60 || len(chunks) != 60 {
		t.Fatalf("release after restart: %d frames, %d chunks", frames, len(chunks))
	}

	// The payout entitlement survived with the issued unit debited:
	// exactly two more units mint, a third is refused.
	withdraw(t, restarted, sessions, delivered, 2)
	pub := restarted.bank.PublicKey()
	note, err := reward.NewNote(pub, bytes.NewReader(bytes.Repeat([]byte{42}, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restarted.Payout(session(t, sessions), delivered.p.ID(), delivered.q, []*big.Int{note.Blind(pub)}); err == nil {
		t.Fatal("entitlement must not re-mint across a restart")
	}

	// A replayed delivery is still refused.
	if _, err := restarted.Deliver(session(t, sessions), delivered.p.ID(), delivered.q, delivered.chunks); !errors.Is(err, ErrAlreadyDelivered) {
		t.Fatalf("replayed delivery after restart: %v", err)
	}

	// Counters crossed over.
	st := restarted.StatsSnapshot()
	if st.DeliveriesAccepted != 1 || st.UnitsMinted != 3 || st.OpenSolicitations != 1 {
		t.Fatalf("stats after restart: %+v", st)
	}
}

func TestBoardLoadValidation(t *testing.T) {
	svc, _ := newTestService(t)
	if err := svc.LoadFrom(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
	// Loading over a non-empty board is refused.
	own := recordOwner(t, 0, 50)
	svc.vps.(*mapSource).put(own.p)
	if _, err := svc.Open(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 0, []vd.VPID{own.p.ID()}, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := svc.LoadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading over a live board must be refused")
	}
}
