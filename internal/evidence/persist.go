package evidence

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"viewmap/internal/geo"
	"viewmap/internal/vd"
)

// Board persistence: the solicitation board — postings, per-entry
// lifecycle state, payout entitlements, and the accepted evidence
// bytes — is snapshotted alongside the VP store so a restarted system
// resumes the lifecycle exactly where it stopped: open offers stay
// open, accepted deliveries stay payable and releasable, and issued
// entitlements cannot be re-minted. The bank (keypair + double-spend
// ledger) persists separately via reward.Bank.SaveTo.

// boardMagic guards against feeding arbitrary files to LoadFrom.
var boardMagic = [8]byte{'V', 'M', 'E', 'V', 'B', 'D', '0', '1'}

// maxPersistChunk bounds one persisted chunk; matches the largest
// per-second chunk a 50 MB-minute video can carry, with headroom.
const maxPersistChunk = 16 << 20

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

// SaveTo streams one consistent cut of the board. As in the VP store's
// snapshot, the shard map is frozen and every shard lock held
// simultaneously while copying, so a save racing an ongoing delivery
// observes the board either before or after that delivery, never a
// torn intermediate.
func (s *Service) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(boardMagic[:]); err != nil {
		return err
	}

	s.mu.Lock()
	minutes := make([]int64, 0, len(s.shards))
	for m := range s.shards {
		minutes = append(minutes, m)
	}
	for _, m := range minutes {
		s.shards[m].mu.Lock()
	}
	counters := [5]int64{
		s.deliveredOK.Load(), s.deliveredBad.Load(),
		s.minted.Load(), s.redeemed.Load(), s.released.Load(),
	}
	err := s.saveShardsLocked(bw, minutes, counters)
	for _, m := range minutes {
		s.shards[m].mu.Unlock()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return bw.Flush()
}

// saveShardsLocked writes counters and shards; every involved lock is
// held by SaveTo.
func (s *Service) saveShardsLocked(w io.Writer, minutes []int64, counters [5]int64) error {
	for _, c := range counters {
		if err := writeU64(w, uint64(c)); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(minutes))); err != nil {
		return err
	}
	for _, m := range minutes {
		sh := s.shards[m]
		if err := writeU64(w, uint64(m)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(sh.solicitations))); err != nil {
			return err
		}
		for _, sol := range sh.solicitations {
			for _, f := range []float64{sol.site.Min.X, sol.site.Min.Y, sol.site.Max.X, sol.site.Max.Y} {
				if err := writeU64(w, math.Float64bits(f)); err != nil {
					return err
				}
			}
			if err := writeU32(w, uint32(sol.units)); err != nil {
				return err
			}
			if err := writeU32(w, uint32(len(sol.entries))); err != nil {
				return err
			}
			for _, e := range sol.entries {
				if _, err := w.Write(e.id[:]); err != nil {
					return err
				}
				if err := writeU32(w, uint32(e.units)); err != nil {
					return err
				}
				if err := writeU32(w, uint32(e.state)); err != nil {
					return err
				}
				if err := writeU32(w, uint32(e.remaining)); err != nil {
					return err
				}
				if err := writeU32(w, uint32(len(e.chunks))); err != nil {
					return err
				}
				for _, c := range e.chunks {
					if err := writeU32(w, uint32(len(c))); err != nil {
						return err
					}
					if _, err := w.Write(c); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// LoadFrom restores a board snapshot written by SaveTo into an empty
// service. Loading over live board state is rejected: the snapshot is
// a full-state restore, not a merge.
func (s *Service) LoadFrom(r io.Reader) error {
	s.mu.RLock()
	dirty := len(s.shards) != 0
	s.mu.RUnlock()
	if dirty {
		return errors.New("evidence: board not empty; load into a fresh service")
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("evidence: reading board header: %w", err)
	}
	if magic != boardMagic {
		return errors.New("evidence: not an evidence-board file")
	}
	var counters [5]int64
	for i := range counters {
		v, err := readU64(br)
		if err != nil {
			return err
		}
		counters[i] = int64(v)
	}
	nShards, err := readU32(br)
	if err != nil {
		return err
	}
	for i := uint32(0); i < nShards; i++ {
		if err := s.loadShard(br); err != nil {
			return fmt.Errorf("evidence: shard %d: %w", i, err)
		}
	}
	s.deliveredOK.Store(counters[0])
	s.deliveredBad.Store(counters[1])
	s.minted.Store(counters[2])
	s.redeemed.Store(counters[3])
	s.released.Store(counters[4])
	return nil
}

// loadShard reads one shard record into the service.
func (s *Service) loadShard(r io.Reader) error {
	mRaw, err := readU64(r)
	if err != nil {
		return err
	}
	sh := s.ensureShard(int64(mRaw))
	nSols, err := readU32(r)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := uint32(0); i < nSols; i++ {
		var coords [4]float64
		for j := range coords {
			bits, err := readU64(r)
			if err != nil {
				return err
			}
			coords[j] = math.Float64frombits(bits)
		}
		units, err := readU32(r)
		if err != nil {
			return err
		}
		nEntries, err := readU32(r)
		if err != nil {
			return err
		}
		sol := &solicitation{
			site:   geo.NewRect(geo.Pt(coords[0], coords[1]), geo.Pt(coords[2], coords[3])),
			minute: int64(mRaw),
			units:  int(units),
		}
		sh.solicitations[sol.site] = sol
		for j := uint32(0); j < nEntries; j++ {
			e := &entry{}
			if _, err := io.ReadFull(r, e.id[:]); err != nil {
				return err
			}
			eu, err := readU32(r)
			if err != nil {
				return err
			}
			st, err := readU32(r)
			if err != nil {
				return err
			}
			if st > uint32(stateDelivered) {
				return fmt.Errorf("entry %x carries unknown state %d", e.id[:4], st)
			}
			rem, err := readU32(r)
			if err != nil {
				return err
			}
			nChunks, err := readU32(r)
			if err != nil {
				return err
			}
			if nChunks > vd.SegmentSeconds {
				return fmt.Errorf("entry %x claims %d chunks", e.id[:4], nChunks)
			}
			e.units, e.state, e.remaining = int(eu), entryState(st), int(rem)
			for k := uint32(0); k < nChunks; k++ {
				size, err := readU32(r)
				if err != nil {
					return err
				}
				if size > maxPersistChunk {
					return fmt.Errorf("entry %x chunk %d claims %d bytes", e.id[:4], k, size)
				}
				c := make([]byte, size)
				if _, err := io.ReadFull(r, c); err != nil {
					return err
				}
				e.chunks = append(e.chunks, c)
			}
			sol.entries = append(sol.entries, e)
			sh.byID[e.id] = e
		}
	}
	return nil
}
