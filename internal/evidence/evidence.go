// Package evidence runs the sharing half of ViewMap end to end: the
// lifecycle that turns a verified viewmap into delivered, verified,
// paid-for, and privacy-scrubbed dashcam footage (Sections 5.1–5.3).
//
// The lifecycle has four stages, each mapping to one paper mechanism:
//
//  1. Solicitation — a verified investigation opens a solicitation
//     keyed by (site, minute), listing the VP identifiers that sit on
//     trusted viewmap lines and the cash units offered per video.
//     Only identifiers and prices are public; the site and minute
//     under investigation are never revealed to vehicles (§5.2.3).
//  2. Anonymous delivery — owners poll the board through the anonymous
//     channel and deliver under single-use session identifiers
//     (anon.Guard refuses any replayed session, the server-side half
//     of the "constantly change sessions" discipline, §5.1.2). The
//     owner proves ownership with the secret Q_u behind the VP
//     identifier R_u = H(Q_u), and the received bytes are validated by
//     replaying the VD hash cascade against the system-owned VP's
//     digests — any mutated, reordered, substituted, or truncated
//     segment fails (§5.2.3).
//  3. Untraceable payout — an accepted delivery entitles the owner to
//     the offered units, minted as Chaum blind signatures the system
//     cannot link back to the delivery (§5.3, Appendix A); the bank's
//     double-spend ledger is durable across restarts.
//  4. Privacy-preserving release — the investigator retrieves the
//     footage only after plate redaction (internal/blur) runs over the
//     stored copy; raw bytes never leave the subsystem.
//
// The subsystem deliberately has a narrow waist: it reads stored VPs
// through the VPSource interface, signs through a reward.Bank, and is
// otherwise self-contained — the server wires it to HTTP endpoints
// without the evidence state growing into server.System. Board state
// is sharded by unit-time window, mirroring the VP store's sharding,
// and snapshot-persisted alongside it.
package evidence

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"
	"sync/atomic"

	"viewmap/internal/anon"
	"viewmap/internal/blur"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// VPSource is the subsystem's read-only view of the VP database.
// server.Store satisfies it.
type VPSource interface {
	// Get returns the stored profile with the given identifier.
	Get(id vd.VPID) (*vp.Profile, bool)
}

// Config parameterizes the evidence subsystem.
type Config struct {
	// FrameWidth and FrameHeight are the luminance-frame dimensions
	// redaction assumes for frame-shaped chunks; zero selects 160x90.
	FrameWidth, FrameHeight int
	// BlurParams tune the plate detector used at release; the zero
	// value selects blur.DefaultParams.
	BlurParams blur.Params
	// MaxVideoBytes bounds one delivered video; zero selects 64 MB
	// (a 50 MB minute plus headroom).
	MaxVideoBytes int64
}

func (c Config) withDefaults() Config {
	if c.FrameWidth == 0 {
		c.FrameWidth = 160
	}
	if c.FrameHeight == 0 {
		c.FrameHeight = 90
	}
	if c.MaxVideoBytes == 0 {
		c.MaxVideoBytes = 64 << 20
	}
	return c
}

// Journal receives board and bank mutations for write-ahead logging.
// The server's durable runtime implements it; each call must make the
// mutation durable before returning, and the service only acknowledges
// the mutation to the caller once it has. Replay-side re-application
// (ReplayDeliver, ReplayPayout) never journals.
type Journal interface {
	// JournalOpen records a solicitation posting (or merge).
	JournalOpen(site geo.Rect, minute int64, units int, ids []vd.VPID) error
	// JournalDeliver records an accepted delivery's bytes.
	JournalDeliver(id vd.VPID, chunks [][]byte) error
	// JournalPayout records the entitlement remaining after a payout
	// debit — an absolute value, so replay converges regardless of how
	// a snapshot cut interleaved with the debit.
	JournalPayout(id vd.VPID, remaining int) error
	// JournalRedeem records a burned cash unit.
	JournalRedeem(c *reward.Cash) error
}

// Service is the evidence subsystem: solicitation board, delivery
// validator, payout desk, and release gate. Safe for concurrent use.
type Service struct {
	cfg      Config
	vps      VPSource
	bank     *reward.Bank
	sessions *anon.Guard
	// journal, when set, write-ahead-logs every board/bank mutation.
	journal Journal

	// mu guards the shard map only; each shard carries its own lock.
	// Lock order: mu may be held while acquiring shard locks (the
	// persistence snapshot does, to freeze one atomic cut), never the
	// reverse.
	mu     sync.RWMutex
	shards map[int64]*boardShard

	deliveredOK  atomic.Int64
	deliveredBad atomic.Int64
	minted       atomic.Int64
	redeemed     atomic.Int64
	released     atomic.Int64
}

// boardShard holds one unit-time window's solicitations — the same
// sharding axis as the VP store, so board contention mirrors ingest
// contention and a hot minute never blocks the rest of the board.
type boardShard struct {
	mu sync.Mutex
	// solicitations keys by investigation site; one (site, minute)
	// pair is one solicitation.
	solicitations map[geo.Rect]*solicitation
	// byID indexes the shard's entries by VP identifier for delivery
	// and payout lookups. An identifier listed by two overlapping
	// sites resolves to its first listing.
	byID map[vd.VPID]*entry
}

// solicitation is one open 'request for video' posting.
type solicitation struct {
	site    geo.Rect
	minute  int64
	units   int
	entries []*entry
}

// entryState tracks one solicited VP through the lifecycle.
type entryState uint8

const (
	stateSolicited entryState = iota // listed, no accepted delivery yet
	stateDelivered                   // video accepted, payout open
)

// entry is the per-VP lifecycle record.
type entry struct {
	id        vd.VPID
	units     int // units offered for this video
	state     entryState
	remaining int      // blind signatures not yet issued
	chunks    [][]byte // the accepted copy (stateDelivered only)
}

// NewService creates the subsystem over a VP source and a bank.
func NewService(cfg Config, vps VPSource, bank *reward.Bank) (*Service, error) {
	if vps == nil || bank == nil {
		return nil, errors.New("evidence: need a VP source and a bank")
	}
	return &Service{
		cfg:      cfg.withDefaults(),
		vps:      vps,
		bank:     bank,
		sessions: anon.NewGuard(),
		shards:   make(map[int64]*boardShard),
	}, nil
}

// SetJournal attaches the write-ahead journal. Call before serving
// traffic; a nil journal (the default) logs nothing.
func (s *Service) SetJournal(j Journal) { s.journal = j }

// Errors of the lifecycle, mapped onto HTTP statuses by the server.
var (
	// ErrNotSolicited is returned for deliveries nobody asked for —
	// the automation shielding the pipeline from dump attacks.
	ErrNotSolicited = errors.New("evidence: video was not solicited")
	// ErrAlreadyDelivered is returned when a solicited video was
	// already accepted.
	ErrAlreadyDelivered = errors.New("evidence: video already delivered")
	// ErrBadOwnership is returned when the presented secret does not
	// hash to the VP identifier.
	ErrBadOwnership = errors.New("evidence: secret does not prove ownership")
	// ErrCascade is returned when the uploaded bytes fail the VD hash
	// cascade against the stored VP.
	ErrCascade = errors.New("evidence: video fails VD-cascade verification")
	// ErrNotDelivered is returned for payout or release requests
	// against an entry without an accepted delivery.
	ErrNotDelivered = errors.New("evidence: no accepted delivery")
)

// shard returns the board shard for a minute, or nil.
func (s *Service) shard(m int64) *boardShard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[m]
}

// ensureShard returns the board shard for a minute, creating it if
// needed.
func (s *Service) ensureShard(m int64) *boardShard {
	if sh := s.shard(m); sh != nil {
		return sh
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[m]
	if sh == nil {
		sh = &boardShard{
			solicitations: make(map[geo.Rect]*solicitation),
			byID:          make(map[vd.VPID]*entry),
		}
		s.shards[m] = sh
	}
	return sh
}

// OpenResult reports one Open call.
type OpenResult struct {
	// Listed is the number of identifiers now on the solicitation.
	Listed int
	// NewlyListed is how many of them this call added.
	NewlyListed int
	// Units is the per-video offer.
	Units int
}

// Open posts (or extends) the solicitation for a verified (site,
// minute) investigation: ids are the VP identifiers on trusted viewmap
// lines — the caller is expected to pass a TrustRank-verified set —
// and units is the cash offered per delivered video. Reopening the
// same site and minute after further ingest merges newly legitimate
// identifiers into the posting without disturbing entries that already
// accepted a delivery; the offer of an existing posting is not
// changed.
func (s *Service) Open(site geo.Rect, minute int64, ids []vd.VPID, units int) (*OpenResult, error) {
	if units <= 0 {
		return nil, fmt.Errorf("evidence: offer must be positive, got %d units", units)
	}
	if len(ids) == 0 {
		return nil, errors.New("evidence: nothing to solicit")
	}
	sh := s.ensureShard(minute)
	sh.mu.Lock()
	sol := sh.solicitations[site]
	if sol == nil {
		sol = &solicitation{site: site, minute: minute, units: units}
		sh.solicitations[site] = sol
	}
	res := &OpenResult{Units: sol.units}
	for _, id := range ids {
		if _, dup := sh.byID[id]; dup {
			continue
		}
		e := &entry{id: id, units: sol.units}
		sh.byID[id] = e
		sol.entries = append(sol.entries, e)
		res.NewlyListed++
	}
	res.Listed = len(sol.entries)
	sh.mu.Unlock()
	if s.journal != nil {
		// Replaying the posting re-merges the same identifier set — a
		// no-op over a snapshot that already contains it.
		if err := s.journal.JournalOpen(site, minute, units, ids); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Offer is one public board line: an identifier wanted and the units
// offered. Nothing else is revealed — not the site, not the minute
// under investigation.
type Offer struct {
	// ID is the solicited VP identifier.
	ID vd.VPID
	// Units is the cash offered for the video behind it.
	Units int
}

// Board lists the currently open offers (solicited, not yet
// delivered) across all shards, in deterministic identifier order.
// Vehicles poll this anonymously.
func (s *Service) Board() []Offer {
	s.mu.RLock()
	shards := make([]*boardShard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.RUnlock()
	var out []Offer
	for _, sh := range shards {
		sh.mu.Lock()
		for _, e := range sh.byID {
			if e.state == stateSolicited {
				out = append(out, Offer{ID: e.id, Units: e.units})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i].ID[:]) < string(out[j].ID[:])
	})
	return out
}

// lookup resolves an identifier to its board entry via the stored
// profile's minute — the profile is needed for cascade verification
// anyway, so delivery never touches more than one shard.
func (s *Service) lookup(id vd.VPID) (*vp.Profile, *boardShard, *entry, error) {
	p, ok := s.vps.Get(id)
	if !ok {
		return nil, nil, nil, ErrNotSolicited
	}
	sh := s.shard(p.Minute())
	if sh == nil {
		return nil, nil, nil, ErrNotSolicited
	}
	sh.mu.Lock()
	e := sh.byID[id]
	sh.mu.Unlock()
	if e == nil {
		return nil, nil, nil, ErrNotSolicited
	}
	return p, sh, e, nil
}

// Deliver accepts one anonymous video delivery: session is the
// single-use session identifier of the exchange, q the ownership
// secret, chunks the per-second bytes. On success it returns the
// number of cash units the owner is now entitled to withdraw.
//
// The cascade replay runs outside the shard lock (it hashes the whole
// video); the entry state is re-checked before committing, so of two
// racing deliveries for the same identifier exactly one is accepted.
func (s *Service) Deliver(session string, id vd.VPID, q vd.Secret, chunks [][]byte) (int, error) {
	if err := s.sessions.Use(session); err != nil {
		return 0, err
	}
	if !id.Matches(q) {
		return 0, ErrBadOwnership
	}
	p, sh, e, err := s.lookup(id)
	if err != nil {
		return 0, err
	}
	sh.mu.Lock()
	if e.state != stateSolicited {
		sh.mu.Unlock()
		return 0, ErrAlreadyDelivered
	}
	sh.mu.Unlock()

	var total int64
	for _, c := range chunks {
		total += int64(len(c))
	}
	if total > s.cfg.MaxVideoBytes {
		s.deliveredBad.Add(1)
		return 0, fmt.Errorf("evidence: video of %d bytes exceeds the %d-byte cap", total, s.cfg.MaxVideoBytes)
	}
	if err := vd.Replay(id, p.VDs, chunks); err != nil {
		s.deliveredBad.Add(1)
		return 0, fmt.Errorf("%w: %v", ErrCascade, err)
	}

	// Commit: keep our own copy so later tampering with the caller's
	// buffers cannot alter the accepted evidence.
	stored := make([][]byte, len(chunks))
	for i, c := range chunks {
		stored[i] = append([]byte(nil), c...)
	}
	sh.mu.Lock()
	if e.state != stateSolicited {
		sh.mu.Unlock()
		return 0, ErrAlreadyDelivered
	}
	e.state = stateDelivered
	e.chunks = stored
	e.remaining = e.units
	units := e.units
	sh.mu.Unlock()
	s.deliveredOK.Add(1)
	if s.journal != nil {
		// Ack only once the accepted bytes are on the log; a crash
		// before this line loses an unacknowledged delivery, which the
		// owner simply re-sends.
		if err := s.journal.JournalDeliver(id, stored); err != nil {
			return 0, err
		}
	}
	return units, nil
}

// ReplayDeliver re-applies an accepted delivery from the ingest log
// during recovery: no session, ownership, or cascade checks — the
// record's CRC vouches for the bytes the live path already verified —
// and no journaling. A delivery already present (restored from a
// snapshot) is left untouched.
func (s *Service) ReplayDeliver(id vd.VPID, chunks [][]byte) {
	_, sh, e, err := s.lookup(id)
	if err != nil {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.state != stateSolicited {
		return
	}
	e.state = stateDelivered
	e.chunks = chunks
	e.remaining = e.units
	s.deliveredOK.Add(1)
}

// Payout issues blind signatures against an accepted delivery's
// entitlement: the owner re-proves ownership under a fresh single-use
// session and presents blinded messages; the system signs without
// learning them (Appendix A). Units are debited before signing and
// refunded for any malformed blinded value, so the entitlement can
// never be over-issued.
func (s *Service) Payout(session string, id vd.VPID, q vd.Secret, blinded []*big.Int) ([]*big.Int, error) {
	if err := s.sessions.Use(session); err != nil {
		return nil, err
	}
	if !id.Matches(q) {
		return nil, ErrBadOwnership
	}
	_, sh, e, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if len(blinded) == 0 {
		return nil, errors.New("evidence: nothing to sign")
	}
	sh.mu.Lock()
	if e.state != stateDelivered {
		sh.mu.Unlock()
		return nil, ErrNotDelivered
	}
	if e.remaining < len(blinded) {
		n := e.remaining
		sh.mu.Unlock()
		return nil, fmt.Errorf("evidence: %d units requested, %d remaining", len(blinded), n)
	}
	e.remaining -= len(blinded)
	after := e.remaining
	sh.mu.Unlock()

	out := make([]*big.Int, 0, len(blinded))
	for _, b := range blinded {
		sig, err := s.bank.SignBlinded(b)
		if err != nil {
			// The error return discards every signature computed so
			// far, so the whole debit is refunded — nothing issued,
			// nothing burned.
			sh.mu.Lock()
			e.remaining += len(blinded)
			sh.mu.Unlock()
			return nil, err
		}
		out = append(out, sig)
	}
	if s.journal != nil {
		// The absolute post-debit value makes replay order-independent
		// and idempotent: recovery takes the minimum it sees, which is
		// the lowest entitlement ever acknowledged.
		if err := s.journal.JournalPayout(id, after); err != nil {
			// The signatures are discarded with the error and the debit
			// was never logged, so refund it — same policy as a signing
			// failure: nothing issued, nothing burned. (A crash replay
			// restores the balance the same way.)
			sh.mu.Lock()
			e.remaining += len(blinded)
			sh.mu.Unlock()
			return nil, err
		}
	}
	s.minted.Add(int64(len(out)))
	return out, nil
}

// ReplayPayout re-applies a payout debit from the ingest log during
// recovery: the entry's entitlement is lowered to the logged post-
// debit value if it is not already at or below it. Entitlements only
// shrink on the live path, so taking the minimum converges to the
// acknowledged state no matter how a snapshot cut interleaved with
// the debits.
func (s *Service) ReplayPayout(id vd.VPID, remaining int) {
	_, sh, e, err := s.lookup(id)
	if err != nil {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.state != stateDelivered || remaining < 0 || e.remaining <= remaining {
		return
	}
	s.minted.Add(int64(e.remaining - remaining))
	e.remaining = remaining
}

// Redeem verifies and burns one unit of cash at the subsystem's
// redemption desk. A double spend — including one attempted across a
// persistence restart — is refused by the bank's durable ledger.
func (s *Service) Redeem(c *reward.Cash) error {
	if err := s.bank.Redeem(c); err != nil {
		return err
	}
	s.redeemed.Add(1)
	if s.journal != nil {
		// The burn must be durable before the goods change hands:
		// replaying it against an already-spent ledger is a no-op.
		if err := s.journal.JournalRedeem(c); err != nil {
			return err
		}
	}
	return nil
}

// Release returns the investigator-facing copy of an accepted
// delivery: plate redaction runs over the stored bytes and only the
// redacted copy leaves the subsystem. The stored evidence itself is
// never modified, so it can be re-verified against the VP cascade at
// any time.
func (s *Service) Release(id vd.VPID) (chunks [][]byte, frames, regions int, err error) {
	_, sh, e, err := s.lookup(id)
	if err != nil {
		return nil, 0, 0, err
	}
	sh.mu.Lock()
	if e.state != stateDelivered {
		sh.mu.Unlock()
		return nil, 0, 0, ErrNotDelivered
	}
	stored := e.chunks
	sh.mu.Unlock()

	out, frames, regions, err := blur.RedactChunks(stored, s.cfg.FrameWidth, s.cfg.FrameHeight, s.cfg.BlurParams)
	if err != nil {
		return nil, 0, 0, err
	}
	s.released.Add(1)
	return out, frames, regions, nil
}

// Stats are the subsystem's lifecycle counters, surfaced through
// GET /v1/stats.
type Stats struct {
	// OpenSolicitations counts board entries still awaiting delivery.
	OpenSolicitations int
	// DeliveriesAccepted and DeliveriesRejected count cascade-verified
	// and refused uploads (rejections count tampered bytes and
	// oversized videos; session or ownership failures never reach
	// verification).
	DeliveriesAccepted, DeliveriesRejected int
	// UnitsMinted and UnitsRedeemed count blind signatures issued and
	// cash units burned.
	UnitsMinted, UnitsRedeemed int
	// Released counts redacted videos handed to investigators.
	Released int
}

// StatsSnapshot reads the current counters.
func (s *Service) StatsSnapshot() Stats {
	st := Stats{
		DeliveriesAccepted: int(s.deliveredOK.Load()),
		DeliveriesRejected: int(s.deliveredBad.Load()),
		UnitsMinted:        int(s.minted.Load()),
		UnitsRedeemed:      int(s.redeemed.Load()),
		Released:           int(s.released.Load()),
	}
	s.mu.RLock()
	shards := make([]*boardShard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.RUnlock()
	for _, sh := range shards {
		sh.mu.Lock()
		for _, e := range sh.byID {
			if e.state == stateSolicited {
				st.OpenSolicitations++
			}
		}
		sh.mu.Unlock()
	}
	return st
}
