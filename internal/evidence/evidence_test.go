package evidence

import (
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"image"
	"math/big"
	"sync"
	"testing"

	"viewmap/internal/anon"
	"viewmap/internal/blur"
	"viewmap/internal/geo"
	"viewmap/internal/reward"
	"viewmap/internal/vd"
	"viewmap/internal/vp"
)

// testKey caches one RSA key; generation dominates test time.
var (
	keyOnce sync.Once
	testKey *rsa.PrivateKey
)

func testBank(t testing.TB) *reward.Bank {
	t.Helper()
	keyOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			t.Fatal(err)
		}
		testKey = k
	})
	return reward.NewBankFromKey(testKey)
}

// mapSource is a VPSource over a plain map.
type mapSource struct {
	mu sync.Mutex
	m  map[vd.VPID]*vp.Profile
}

func newMapSource() *mapSource { return &mapSource{m: make(map[vd.VPID]*vp.Profile)} }

func (s *mapSource) Get(id vd.VPID) (*vp.Profile, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.m[id]
	return p, ok
}

func (s *mapSource) put(p *vp.Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[p.ID()] = p
}

// owner is one test fixture: a VP, its secret, and the recorded video.
type owner struct {
	p      *vp.Profile
	q      vd.Secret
	chunks [][]byte
}

// recordOwner drives a full minute of recording with a plate-bearing
// camera and returns the resulting VP, secret, and chunks.
func recordOwner(t testing.TB, minute int64, seed uint64) *owner {
	t.Helper()
	q, err := vd.NewSecret()
	if err != nil {
		t.Fatal(err)
	}
	r := vd.DeriveVPID(q)
	b, err := vp.NewBuilder(r, minute*60, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	cam := &blur.CameraSource{W: 160, H: 90, Seed: seed,
		Plates: []blur.Plate{{Rect: image.Rect(55, 40, 105, 56)}}}
	chunks := make([][]byte, 0, 60)
	for s := 1; s <= 60; s++ {
		chunk := cam.SecondChunk(minute*60, s)
		if _, err := b.RecordSecond(geo.Pt(float64(s)*10, float64(seed%7)), chunk); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, chunk)
	}
	p, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return &owner{p: p, q: q, chunks: chunks}
}

func newTestService(t testing.TB) (*Service, *mapSource) {
	t.Helper()
	svc, err := NewService(Config{FrameWidth: 160, FrameHeight: 90}, newMapSource(), testBank(t))
	if err != nil {
		t.Fatal(err)
	}
	return svc, svc.vps.(*mapSource)
}

// session draws a fresh single-use session id.
func session(t testing.TB, s *anon.Sessions) string {
	t.Helper()
	id, err := s.New()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestLifecycleSolicitDeliverPayoutRelease(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()
	own := recordOwner(t, 0, 3)
	src.put(own.p)

	site := geo.NewRect(geo.Pt(0, -50), geo.Pt(700, 50))
	res, err := svc.Open(site, 0, []vd.VPID{own.p.ID()}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewlyListed != 1 || res.Units != 3 {
		t.Fatalf("open result %+v", res)
	}

	// The board lists the identifier and the offer — nothing else.
	board := svc.Board()
	if len(board) != 1 || board[0].ID != own.p.ID() || board[0].Units != 3 {
		t.Fatalf("board = %+v", board)
	}

	// Deliver honestly.
	units, err := svc.Deliver(session(t, sessions), own.p.ID(), own.q, own.chunks)
	if err != nil {
		t.Fatal(err)
	}
	if units != 3 {
		t.Fatalf("entitled units = %d, want 3", units)
	}
	if got := svc.Board(); len(got) != 0 {
		t.Fatalf("delivered entry still on the board: %+v", got)
	}

	// A second delivery — even an honest replay — is refused.
	if _, err := svc.Deliver(session(t, sessions), own.p.ID(), own.q, own.chunks); !errors.Is(err, ErrAlreadyDelivered) {
		t.Fatalf("second delivery: got %v, want ErrAlreadyDelivered", err)
	}

	// Payout: withdraw all three units via blind signatures.
	pub := svc.bank.PublicKey()
	cash := withdraw(t, svc, sessions, own, 3)
	for _, c := range cash {
		if !c.Verify(pub) {
			t.Fatal("minted unit fails public verification")
		}
	}

	// Entitlement is exhausted: a fourth unit is refused.
	note, err := reward.NewNote(pub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Payout(session(t, sessions), own.p.ID(), own.q, []*big.Int{note.Blind(pub)}); err == nil {
		t.Fatal("over-withdrawal must be refused")
	}

	// Redeem once; double spend bounces.
	if err := svc.Redeem(cash[0]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Redeem(cash[0]); !errors.Is(err, reward.ErrDoubleSpend) {
		t.Fatalf("double spend: got %v, want ErrDoubleSpend", err)
	}

	// Release: the investigator gets a redacted copy; the stored copy
	// is untouched and still cascade-verifies.
	chunks, frames, regions, err := svc.Release(own.p.ID())
	if err != nil {
		t.Fatal(err)
	}
	if frames != 60 || regions < 60 {
		t.Fatalf("release redacted %d frames, %d regions", frames, regions)
	}
	if len(chunks) != 60 {
		t.Fatalf("released %d chunks", len(chunks))
	}
	if err := vd.Replay(own.p.ID(), own.p.VDs, chunks); err == nil {
		t.Fatal("released copy must NOT cascade-verify (it was redacted)")
	}

	st := svc.StatsSnapshot()
	want := Stats{DeliveriesAccepted: 1, UnitsMinted: 3, UnitsRedeemed: 1, Released: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestDeliverRejectsSessionReuse(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()
	own := recordOwner(t, 0, 4)
	src.put(own.p)
	if _, err := svc.Open(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 0, []vd.VPID{own.p.ID()}, 1); err != nil {
		t.Fatal(err)
	}
	sid := session(t, sessions)
	if _, err := svc.Deliver(sid, own.p.ID(), own.q, own.chunks); err != nil {
		t.Fatal(err)
	}
	// Replaying the session id on any endpoint is refused before
	// anything else is even looked at.
	if _, err := svc.Payout(sid, own.p.ID(), own.q, nil); !errors.Is(err, anon.ErrSessionReused) {
		t.Fatalf("session replay: got %v, want ErrSessionReused", err)
	}
	if _, err := svc.Deliver("", own.p.ID(), own.q, own.chunks); !errors.Is(err, anon.ErrSessionMissing) {
		t.Fatalf("missing session: got %v", err)
	}
}

func TestDeliverRejectsWrongSecretAndUnsolicited(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()
	own := recordOwner(t, 0, 5)
	src.put(own.p)
	if _, err := svc.Open(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 0, []vd.VPID{own.p.ID()}, 2); err != nil {
		t.Fatal(err)
	}
	var wrongQ vd.Secret
	if _, err := svc.Deliver(session(t, sessions), own.p.ID(), wrongQ, own.chunks); !errors.Is(err, ErrBadOwnership) {
		t.Fatalf("wrong secret: got %v", err)
	}
	// A stored but unsolicited VP is refused.
	other := recordOwner(t, 0, 6)
	src.put(other.p)
	if _, err := svc.Deliver(session(t, sessions), other.p.ID(), other.q, other.chunks); !errors.Is(err, ErrNotSolicited) {
		t.Fatalf("unsolicited: got %v", err)
	}
	// An unknown VP is refused without leaking whether it exists.
	ghost := recordOwner(t, 0, 7)
	if _, err := svc.Deliver(session(t, sessions), ghost.p.ID(), ghost.q, ghost.chunks); !errors.Is(err, ErrNotSolicited) {
		t.Fatalf("unknown VP: got %v", err)
	}
	if st := svc.StatsSnapshot(); st.DeliveriesRejected != 0 {
		t.Fatalf("pre-verification refusals must not count as rejected deliveries: %+v", st)
	}
}

func TestOpenValidationAndMerge(t *testing.T) {
	svc, src := newTestService(t)
	own := recordOwner(t, 2, 8)
	src.put(own.p)
	site := geo.NewRect(geo.Pt(0, 0), geo.Pt(9, 9))
	if _, err := svc.Open(site, 2, nil, 3); err == nil {
		t.Fatal("empty id list must be rejected")
	}
	if _, err := svc.Open(site, 2, []vd.VPID{own.p.ID()}, 0); err == nil {
		t.Fatal("non-positive offer must be rejected")
	}
	if _, err := svc.Open(site, 2, []vd.VPID{own.p.ID()}, 3); err != nil {
		t.Fatal(err)
	}
	// Reopening after further ingest merges only the new identifiers.
	late := recordOwner(t, 2, 9)
	src.put(late.p)
	res, err := svc.Open(site, 2, []vd.VPID{own.p.ID(), late.p.ID()}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewlyListed != 1 || res.Listed != 2 || res.Units != 3 {
		t.Fatalf("merge result %+v, want 1 new, 2 listed, original offer kept", res)
	}
}

func TestConcurrentDeliveriesExactlyOneWins(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()
	own := recordOwner(t, 0, 10)
	src.put(own.p)
	if _, err := svc.Open(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 0, []vd.VPID{own.p.ID()}, 2); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		sid := session(t, sessions)
		go func() {
			_, err := svc.Deliver(sid, own.p.ID(), own.q, own.chunks)
			errs <- err
		}()
	}
	accepted, refused := 0, 0
	for w := 0; w < workers; w++ {
		switch err := <-errs; {
		case err == nil:
			accepted++
		case errors.Is(err, ErrAlreadyDelivered):
			refused++
		default:
			t.Errorf("unexpected delivery error: %v", err)
		}
	}
	if accepted != 1 || refused != workers-1 {
		t.Fatalf("accepted=%d refused=%d, want exactly one acceptance", accepted, refused)
	}
	if st := svc.StatsSnapshot(); st.DeliveriesAccepted != 1 {
		t.Fatalf("stats count %d acceptances", st.DeliveriesAccepted)
	}
}

func TestConcurrentLifecycleManyOwners(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()
	const owners = 6
	site := geo.NewRect(geo.Pt(0, -50), geo.Pt(700, 50))
	all := make([]*owner, owners)
	byMinute := make(map[int64][]vd.VPID)
	for i := range all {
		all[i] = recordOwner(t, int64(i%2), uint64(20+i))
		src.put(all[i].p)
		m := all[i].p.Minute()
		byMinute[m] = append(byMinute[m], all[i].p.ID())
	}
	for m, ids := range byMinute {
		if _, err := svc.Open(site, m, ids, 2); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, own := range all {
		sid := session(t, sessions)
		paySid := session(t, sessions)
		wg.Add(1)
		go func(own *owner, sid, paySid string) {
			defer wg.Done()
			if _, err := svc.Deliver(sid, own.p.ID(), own.q, own.chunks); err != nil {
				t.Errorf("deliver: %v", err)
				return
			}
			pub := svc.bank.PublicKey()
			note, err := reward.NewNote(pub, rand.Reader)
			if err != nil {
				t.Error(err)
				return
			}
			sigs, err := svc.Payout(paySid, own.p.ID(), own.q, []*big.Int{note.Blind(pub)})
			if err != nil {
				t.Errorf("payout: %v", err)
				return
			}
			cash, err := note.Unblind(pub, sigs[0])
			if err != nil {
				t.Error(err)
				return
			}
			if err := svc.Redeem(cash); err != nil {
				t.Errorf("redeem: %v", err)
			}
		}(own, sid, paySid)
	}
	wg.Wait()
	st := svc.StatsSnapshot()
	if st.DeliveriesAccepted != owners || st.UnitsMinted != owners || st.UnitsRedeemed != owners {
		t.Fatalf("stats after concurrent lifecycle: %+v", st)
	}
	if st.OpenSolicitations != 0 {
		t.Fatalf("every entry delivered, yet %d still open", st.OpenSolicitations)
	}
}

// withdraw runs the client-side blind-signature withdrawal of n units.
func withdraw(t testing.TB, svc *Service, sessions *anon.Sessions, own *owner, n int) []*reward.Cash {
	t.Helper()
	pub := svc.bank.PublicKey()
	notes := make([]*reward.Note, n)
	blinded := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		note, err := reward.NewNote(pub, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		notes[i] = note
		blinded[i] = note.Blind(pub)
	}
	sigs, err := svc.Payout(session(t, sessions), own.p.ID(), own.q, blinded)
	if err != nil {
		t.Fatal(err)
	}
	cash := make([]*reward.Cash, n)
	for i := range sigs {
		c, err := notes[i].Unblind(pub, sigs[i])
		if err != nil {
			t.Fatal(err)
		}
		cash[i] = c
	}
	return cash
}

func TestReleaseRequiresDelivery(t *testing.T) {
	svc, src := newTestService(t)
	own := recordOwner(t, 0, 30)
	src.put(own.p)
	if _, err := svc.Open(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 0, []vd.VPID{own.p.ID()}, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := svc.Release(own.p.ID()); !errors.Is(err, ErrNotDelivered) {
		t.Fatalf("release before delivery: got %v", err)
	}
	ghost := recordOwner(t, 0, 31)
	if _, _, _, err := svc.Release(ghost.p.ID()); !errors.Is(err, ErrNotSolicited) {
		t.Fatalf("release of unknown id: got %v", err)
	}
}

func TestDeliverRejectsOversizedVideo(t *testing.T) {
	svc, err := NewService(Config{MaxVideoBytes: 100}, newMapSource(), testBank(t))
	if err != nil {
		t.Fatal(err)
	}
	src := svc.vps.(*mapSource)
	sessions := anon.NewSessions()
	own := recordOwner(t, 0, 32)
	src.put(own.p)
	if _, err := svc.Open(geo.NewRect(geo.Pt(0, 0), geo.Pt(1, 1)), 0, []vd.VPID{own.p.ID()}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Deliver(session(t, sessions), own.p.ID(), own.q, own.chunks); err == nil {
		t.Fatal("oversized video must be refused")
	}
	if st := svc.StatsSnapshot(); st.DeliveriesRejected != 1 {
		t.Fatalf("rejection not counted: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	// Compile-time check that Stats is comparable (used by tests) and
	// printable.
	st := Stats{OpenSolicitations: 1}
	if fmt.Sprintf("%+v", st) == "" {
		t.Fatal("unprintable stats")
	}
}
