package evidence

import (
	"errors"
	"math/rand"
	"testing"

	"viewmap/internal/anon"
	"viewmap/internal/geo"
	"viewmap/internal/vd"
)

// Property test for the VD-cascade acceptance gate: the subsystem must
// accept exactly the recorded bytes and reject every corruption an
// adversary (or a lossy channel) could produce — any single-byte
// mutation, any segment reorder, any truncation, and any chunk
// substitution. The cascade makes each second's hash cover the new
// content plus the previous hash, so every such corruption breaks at
// least one link.

// corrupt applies one of the corruption families to a copy of chunks.
func corrupt(rng *rand.Rand, chunks [][]byte) (out [][]byte, kind string) {
	out = make([][]byte, len(chunks))
	for i, c := range chunks {
		out[i] = append([]byte(nil), c...)
	}
	switch rng.Intn(4) {
	case 0: // single-byte mutation at a random position
		i := rng.Intn(len(out))
		j := rng.Intn(len(out[i]))
		out[i][j] ^= 1 << uint(rng.Intn(8))
		return out, "byte-flip"
	case 1: // reorder two random distinct segments
		i := rng.Intn(len(out))
		j := rng.Intn(len(out) - 1)
		if j >= i {
			j++
		}
		out[i], out[j] = out[j], out[i]
		return out, "reorder"
	case 2: // truncation: drop a random-length tail
		keep := 1 + rng.Intn(len(out)-1)
		return out[:keep], "truncate"
	default: // substitution: replace one segment with same-length bytes
		i := rng.Intn(len(out))
		sub := make([]byte, len(out[i]))
		rng.Read(sub)
		out[i] = sub
		return out, "substitute"
	}
}

func TestDeliverRejectsEveryCorruption(t *testing.T) {
	svc, src := newTestService(t)
	sessions := anon.NewSessions()
	rng := rand.New(rand.NewSource(7))

	const videos = 4
	const trialsPer = 25
	for v := 0; v < videos; v++ {
		own := recordOwner(t, int64(v), uint64(100+v))
		src.put(own.p)
		site := geo.NewRect(geo.Pt(0, -10), geo.Pt(700, 10))
		if _, err := svc.Open(site, own.p.Minute(), []vd.VPID{own.p.ID()}, 1); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < trialsPer; trial++ {
			bad, kind := corrupt(rng, own.chunks)
			_, err := svc.Deliver(session(t, sessions), own.p.ID(), own.q, bad)
			if !errors.Is(err, ErrCascade) {
				t.Fatalf("video %d trial %d (%s): corruption accepted or misclassified: %v", v, trial, kind, err)
			}
		}
		// After every attack, the honest bytes still go through: the
		// gate rejects corruption, not the owner.
		if _, err := svc.Deliver(session(t, sessions), own.p.ID(), own.q, own.chunks); err != nil {
			t.Fatalf("video %d: honest delivery after attacks: %v", v, err)
		}
	}
	st := svc.StatsSnapshot()
	if st.DeliveriesAccepted != videos || st.DeliveriesRejected != videos*trialsPer {
		t.Fatalf("stats %+v, want %d accepted / %d rejected", st, videos, videos*trialsPer)
	}
}

// TestReplayDirect pins the same properties at the vd layer, without
// the service wrapping, for sharper failure localization.
func TestReplayDirect(t *testing.T) {
	own := recordOwner(t, 0, 200)
	if err := vd.Replay(own.p.ID(), own.p.VDs, own.chunks); err != nil {
		t.Fatalf("honest replay: %v", err)
	}
	// Truncation of the digest list itself (a "shorter video" claim
	// with matching chunk count) is also rejected: the chunk count
	// must match the stored 60-digest VP exactly.
	if err := vd.Replay(own.p.ID(), own.p.VDs, own.chunks[:59]); err == nil {
		t.Fatal("59 chunks against 60 digests must fail")
	}
	// An empty upload is rejected outright.
	if err := vd.Replay(own.p.ID(), own.p.VDs, nil); err == nil {
		t.Fatal("empty upload must fail")
	}
}
