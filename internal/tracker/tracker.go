// Package tracker implements the location-tracking adversary of
// Section 6.2.2: the system itself (or anyone holding the VP database)
// attempting to follow one vehicle across minutes by linking VPs that
// are adjacent in space and time.
//
// The tracker starts with perfect knowledge of the target's initial VP
// (belief p(u,0) = 1). At each minute boundary it predicts the target's
// next start position from the end of each currently-believed VP and
// redistributes belief over the candidate VPs whose start positions lie
// within a deviation model of the prediction (a Gaussian over distance,
// following the path-confusion literature the paper builds on). Guard
// VPs — fabricated trajectories that begin where a neighbor began and
// end where their creator ended — enter the candidate sets and split
// the belief, which is exactly the obfuscation mechanism ViewMap
// relies on.
//
// Metrics per minute t:
//   - location entropy H_t = -sum p log2 p, the tracker's uncertainty
//     (Figs. 10 and 22a), and
//   - tracking success S_t = total belief on VPs genuinely produced by
//     the target (Figs. 11 and 22b).
package tracker

import (
	"errors"
	"fmt"
	"math"

	"viewmap/internal/geo"
	"viewmap/internal/stats"
)

// Observation is one VP as the tracker sees it: an anonymous
// minute-long trajectory. Owner is ground truth used only for scoring
// the tracker (never by it); guard VPs carry Owner = -1.
type Observation struct {
	Start, End geo.Point
	Minute     int64
	// Owner is the ground-truth vehicle id, or -1 for guard VPs.
	Owner int
}

// Config tunes the adversary.
type Config struct {
	// SigmaM is the standard deviation of the distance-deviation model
	// between predicted and observed start positions; zero selects
	// 50 m.
	SigmaM float64
	// MaxJumpM hard-limits candidate linking distance; zero selects
	// 4 sigma.
	MaxJumpM float64
}

func (c Config) withDefaults() Config {
	if c.SigmaM == 0 {
		c.SigmaM = 50
	}
	if c.MaxJumpM == 0 {
		c.MaxJumpM = 4 * c.SigmaM
	}
	return c
}

// Tracker follows one target through an observation dataset.
type Tracker struct {
	cfg Config
	// belief maps observation index (into the current minute's slice)
	// to probability; exposed via snapshots.
	belief map[int]float64
	target int
}

// MinuteMetrics reports the tracker's state after processing a minute.
type MinuteMetrics struct {
	Minute int64
	// Entropy is H_t in bits.
	Entropy float64
	// Success is S_t: belief mass on the target's own VPs.
	Success float64
	// Candidates is the number of VPs with non-zero belief.
	Candidates int
}

// Track runs the adversary over a dataset grouped per minute.
// byMinute[t] holds the observations of minute t (ascending minute
// order, contiguous). The target's VP in minute 0 must be present;
// tracking starts there with belief 1.
func Track(byMinute [][]Observation, target int, cfg Config) ([]MinuteMetrics, error) {
	cfg = cfg.withDefaults()
	if len(byMinute) == 0 {
		return nil, errors.New("tracker: empty dataset")
	}
	tr := &Tracker{cfg: cfg, belief: make(map[int]float64), target: target}

	// Initialize: find the target's actual VP in minute 0.
	first := byMinute[0]
	init := -1
	for i, o := range first {
		if o.Owner == target {
			init = i
			break
		}
	}
	if init == -1 {
		return nil, fmt.Errorf("tracker: target %d has no VP in minute 0", target)
	}
	tr.belief[init] = 1

	out := make([]MinuteMetrics, 0, len(byMinute))
	out = append(out, tr.metrics(first))
	for m := 1; m < len(byMinute); m++ {
		tr.step(byMinute[m-1], byMinute[m])
		out = append(out, tr.metrics(byMinute[m]))
	}
	return out, nil
}

// step advances belief from the previous minute's observations to the
// next minute's.
func (tr *Tracker) step(prev, next []Observation) {
	nb := make(map[int]float64, len(tr.belief))
	for pi, pb := range tr.belief {
		if pb == 0 {
			continue
		}
		pred := prev[pi].End
		// Weight candidates by the deviation model.
		weights := make(map[int]float64)
		var wsum float64
		for ni := range next {
			d := pred.Dist(next[ni].Start)
			if d > tr.cfg.MaxJumpM {
				continue
			}
			w := math.Exp(-d * d / (2 * tr.cfg.SigmaM * tr.cfg.SigmaM))
			weights[ni] = w
			wsum += w
		}
		if wsum == 0 {
			// Lost this thread: the vehicle parked or left the area.
			// The belief mass is dropped and the vector renormalized
			// below, mirroring a tracker discarding dead hypotheses.
			continue
		}
		for ni, w := range weights {
			nb[ni] += pb * w / wsum
		}
	}
	// Renormalize (mass may have been lost to dead threads).
	var total float64
	for _, v := range nb {
		total += v
	}
	if total > 0 {
		for k := range nb {
			nb[k] /= total
		}
	}
	tr.belief = nb
}

// metrics snapshots entropy/success for the current minute.
func (tr *Tracker) metrics(obs []Observation) MinuteMetrics {
	var m MinuteMetrics
	if len(obs) > 0 {
		m.Minute = obs[0].Minute
	}
	probs := make([]float64, 0, len(tr.belief))
	for oi, p := range tr.belief {
		if p <= 0 {
			continue
		}
		probs = append(probs, p)
		m.Candidates++
		if obs[oi].Owner == tr.target {
			m.Success += p
		}
	}
	m.Entropy = stats.Entropy(probs)
	return m
}

// Dataset is a per-minute observation store with owner bookkeeping,
// a convenience for the simulators that fabricate tracking corpora.
type Dataset struct {
	byMinute [][]Observation
	vehicles int
}

// NewDataset creates a dataset covering the given number of minutes.
func NewDataset(minutes, vehicles int) (*Dataset, error) {
	if minutes <= 0 || vehicles <= 0 {
		return nil, fmt.Errorf("tracker: need positive minutes and vehicles (%d, %d)", minutes, vehicles)
	}
	return &Dataset{byMinute: make([][]Observation, minutes), vehicles: vehicles}, nil
}

// Add appends an observation to its minute (which must be in range).
func (d *Dataset) Add(o Observation) error {
	if o.Minute < 0 || int(o.Minute) >= len(d.byMinute) {
		return fmt.Errorf("tracker: minute %d outside dataset", o.Minute)
	}
	d.byMinute[o.Minute] = append(d.byMinute[o.Minute], o)
	return nil
}

// Minutes returns the grouped observations.
func (d *Dataset) Minutes() [][]Observation { return d.byMinute }

// Vehicles returns the fleet size.
func (d *Dataset) Vehicles() int { return d.vehicles }

// AverageOverTargets runs the tracker against every vehicle in the
// dataset and averages entropy and success per minute — the curves the
// paper plots.
func (d *Dataset) AverageOverTargets(cfg Config) (entropy, success []float64, err error) {
	minutes := len(d.byMinute)
	entSum := make([]float64, minutes)
	sucSum := make([]float64, minutes)
	counted := 0
	for v := 0; v < d.vehicles; v++ {
		metrics, err := Track(d.byMinute, v, cfg)
		if err != nil {
			continue // vehicle absent in minute 0
		}
		counted++
		for i, m := range metrics {
			entSum[i] += m.Entropy
			sucSum[i] += m.Success
		}
	}
	if counted == 0 {
		return nil, nil, errors.New("tracker: no trackable vehicles in dataset")
	}
	entropy = make([]float64, minutes)
	success = make([]float64, minutes)
	for i := 0; i < minutes; i++ {
		entropy[i] = entSum[i] / float64(counted)
		success[i] = sucSum[i] / float64(counted)
	}
	return entropy, success, nil
}
