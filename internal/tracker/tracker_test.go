package tracker

import (
	"math"
	"math/rand"
	"testing"

	"viewmap/internal/geo"
)

// lineObs builds an observation for a vehicle driving from x0 to x1 on
// the x axis during the given minute.
func lineObs(owner int, minute int64, x0, x1 float64) Observation {
	return Observation{
		Start: geo.Pt(x0, 0), End: geo.Pt(x1, 0),
		Minute: minute, Owner: owner,
	}
}

func TestTrackSingleVehicleUnambiguous(t *testing.T) {
	// One vehicle, no guards: the tracker never loses it.
	byMinute := [][]Observation{
		{lineObs(0, 0, 0, 600)},
		{lineObs(0, 1, 600, 1200)},
		{lineObs(0, 2, 1200, 1800)},
	}
	metrics, err := Track(byMinute, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range metrics {
		if math.Abs(m.Success-1) > 1e-9 {
			t.Errorf("minute %d: success = %v, want 1", i, m.Success)
		}
		if m.Entropy > 1e-9 {
			t.Errorf("minute %d: entropy = %v, want 0", i, m.Entropy)
		}
	}
}

func TestTrackTargetMissing(t *testing.T) {
	byMinute := [][]Observation{{lineObs(1, 0, 0, 100)}}
	if _, err := Track(byMinute, 0, Config{}); err == nil {
		t.Error("tracking a vehicle absent from minute 0 should fail")
	}
	if _, err := Track(nil, 0, Config{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestGuardVPSplitsBelief(t *testing.T) {
	// Minute 0: target 0 ends at x=600. Minute 1: the target's actual
	// VP starts there, and so does a guard VP (fabricated by a
	// neighbor whose own start matched). Belief must split.
	byMinute := [][]Observation{
		{lineObs(0, 0, 0, 600)},
		{
			lineObs(0, 1, 600, 1200),
			{Start: geo.Pt(600, 0), End: geo.Pt(300, 900), Minute: 1, Owner: -1}, // guard
		},
	}
	metrics, err := Track(byMinute, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	last := metrics[len(metrics)-1]
	if math.Abs(last.Success-0.5) > 1e-9 {
		t.Errorf("success = %v, want 0.5 after a perfect guard split", last.Success)
	}
	if math.Abs(last.Entropy-1) > 1e-9 {
		t.Errorf("entropy = %v, want 1 bit", last.Entropy)
	}
	if last.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", last.Candidates)
	}
}

func TestGuardDivergenceCompounds(t *testing.T) {
	// Vehicle 1 (the guard creator) drives a parallel track. Each
	// minute it fabricates a guard starting at the target's start and
	// ending at its own end, so the false belief thread survives by
	// continuing onto vehicle 1's subsequent VPs: the target's belief
	// halves every minute ("continuously divergent paths").
	const minutes = 5
	byMinute := make([][]Observation, minutes)
	x := 0.0
	const far = 10000 // vehicle 1's track offset
	byMinute[0] = []Observation{
		lineObs(0, 0, x, x+600),
	}
	x += 600
	for m := 1; m < minutes; m++ {
		byMinute[m] = []Observation{
			lineObs(0, int64(m), x, x+600),
			{Start: geo.Pt(far+x, far), End: geo.Pt(far+x+600, far), Minute: int64(m), Owner: 1},
			{Start: geo.Pt(x, 0), End: geo.Pt(far+x+600, far), Minute: int64(m), Owner: -1}, // guard
		}
		x += 600
	}
	metrics, err := Track(byMinute, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0
	for i, m := range metrics {
		if math.Abs(m.Success-want) > 1e-6 {
			t.Errorf("minute %d: success = %v, want %v", i, m.Success, want)
		}
		want /= 2
	}
}

func TestDeadThreadsRenormalize(t *testing.T) {
	// The belief thread following the guard dies (no candidate starts
	// near the guard's end), so mass returns to the real track.
	byMinute := [][]Observation{
		{lineObs(0, 0, 0, 600)},
		{
			lineObs(0, 1, 600, 1200),
			{Start: geo.Pt(600, 0), End: geo.Pt(-9000, 9000), Minute: 1, Owner: -1},
		},
		{lineObs(0, 2, 1200, 1800)}, // nothing continues the guard's path
	}
	metrics, err := Track(byMinute, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s := metrics[1].Success; math.Abs(s-0.5) > 1e-9 {
		t.Fatalf("minute 1 success = %v, want 0.5", s)
	}
	if s := metrics[2].Success; math.Abs(s-1) > 1e-9 {
		t.Errorf("minute 2 success = %v, want 1 after guard thread dies", s)
	}
}

func TestMaxJumpLimitsCandidates(t *testing.T) {
	byMinute := [][]Observation{
		{lineObs(0, 0, 0, 600)},
		{
			lineObs(0, 1, 600, 1200),
			lineObs(1, 1, 650, 1300),  // within jump range: candidate
			lineObs(2, 1, 5000, 5600), // far: excluded
		},
	}
	metrics, err := Track(byMinute, 0, Config{SigmaM: 50})
	if err != nil {
		t.Fatal(err)
	}
	last := metrics[1]
	if last.Candidates != 2 {
		t.Errorf("candidates = %d, want 2 (far VP excluded)", last.Candidates)
	}
	if last.Success <= 0.5 || last.Success >= 1 {
		t.Errorf("success = %v, want in (0.5, 1): exact start beats 50 m offset", last.Success)
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(0, 5); err == nil {
		t.Error("zero minutes should fail")
	}
	if _, err := NewDataset(5, 0); err == nil {
		t.Error("zero vehicles should fail")
	}
	d, err := NewDataset(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add(Observation{Minute: 5}); err == nil {
		t.Error("out-of-range minute should fail")
	}
	if err := d.Add(lineObs(0, 0, 0, 100)); err != nil {
		t.Errorf("valid add should succeed: %v", err)
	}
	if d.Vehicles() != 2 {
		t.Error("Vehicles getter wrong")
	}
}

func TestAverageOverTargets(t *testing.T) {
	d, err := NewDataset(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two vehicles far apart, no guards: both tracked perfectly.
	for m := int64(0); m < 3; m++ {
		d.Add(lineObs(0, m, float64(m)*600, float64(m+1)*600))
		d.Add(lineObs(1, m, 50000+float64(m)*600, 50000+float64(m+1)*600))
	}
	entropy, success, err := d.AverageOverTargets(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range success {
		if math.Abs(success[i]-1) > 1e-9 {
			t.Errorf("minute %d: avg success = %v, want 1", i, success[i])
		}
		if entropy[i] > 1e-9 {
			t.Errorf("minute %d: avg entropy = %v, want 0", i, entropy[i])
		}
	}
}

func TestAverageOverTargetsEmpty(t *testing.T) {
	d, _ := NewDataset(2, 1)
	if _, _, err := d.AverageOverTargets(Config{}); err == nil {
		t.Error("dataset without minute-0 VPs should fail")
	}
}

// TestGuardsDegradeTrackingAtScale reproduces the qualitative result of
// Figs. 10/11: with guard VPs in the dataset, tracking success decays
// toward zero and entropy grows; without them, the tracker holds on.
func TestGuardsDegradeTrackingAtScale(t *testing.T) {
	const (
		vehicles = 30
		minutes  = 10
		alpha    = 0.1
	)
	rng := rand.New(rand.NewSource(42))
	build := func(withGuards bool) *Dataset {
		d, err := NewDataset(minutes, vehicles)
		if err != nil {
			t.Fatal(err)
		}
		// Vehicles drift on a 2 km square; each minute every vehicle
		// moves ~600 m in a random direction from its previous end.
		pos := make([]geo.Point, vehicles)
		for v := range pos {
			pos[v] = geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		}
		for m := 0; m < minutes; m++ {
			starts := make([]geo.Point, vehicles)
			copy(starts, pos)
			for v := 0; v < vehicles; v++ {
				theta := rng.Float64() * 2 * math.Pi
				end := pos[v].Add(geo.Pt(600*math.Cos(theta), 600*math.Sin(theta)))
				d.Add(Observation{Start: pos[v], End: end, Minute: int64(m), Owner: v})
				pos[v] = end
			}
			if !withGuards {
				continue
			}
			// Guards: each vehicle covers ~alpha of its neighbors —
			// fabricate trajectories from a neighbor's start to the
			// creator's end.
			for v := 0; v < vehicles; v++ {
				for u := 0; u < vehicles; u++ {
					if u == v || starts[u].Dist(starts[v]) > 400 {
						continue
					}
					if rng.Float64() < alpha*3 { // boost: small fleet
						d.Add(Observation{Start: starts[u], End: pos[v], Minute: int64(m), Owner: -1})
					}
				}
			}
		}
		return d
	}

	_, successGuard, err := build(true).AverageOverTargets(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, successBare, err := build(false).AverageOverTargets(Config{})
	if err != nil {
		t.Fatal(err)
	}
	lastG := successGuard[minutes-1]
	lastB := successBare[minutes-1]
	if lastG >= lastB {
		t.Errorf("guards should reduce tracking success: with=%v without=%v", lastG, lastB)
	}
	if lastB < 0.8 {
		t.Errorf("without guards tracking should mostly persist, got %v", lastB)
	}
}

func BenchmarkTrack100Vehicles(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const vehicles, minutes = 100, 10
	d, err := NewDataset(minutes, vehicles)
	if err != nil {
		b.Fatal(err)
	}
	pos := make([]geo.Point, vehicles)
	for v := range pos {
		pos[v] = geo.Pt(rng.Float64()*4000, rng.Float64()*4000)
	}
	for m := 0; m < minutes; m++ {
		for v := 0; v < vehicles; v++ {
			theta := rng.Float64() * 2 * math.Pi
			end := pos[v].Add(geo.Pt(600*math.Cos(theta), 600*math.Sin(theta)))
			d.Add(Observation{Start: pos[v], End: end, Minute: int64(m), Owner: v})
			pos[v] = end
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Track(d.Minutes(), i%vehicles, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
