# Targets mirrored by .github/workflows/ci.yml.

GO ?= go

# Recorded coverage floor for the `coverage` target: `go test
# -coverprofile` across ./internal/... measured 78.4% when the
# baseline was last moved (PR 10, fault families + clock/recovery
# tests); the gate fails on regression below this. Raise it when new
# tests land, never lower it to make a PR pass.
COVER_BASELINE ?= 77.5

# Per-target budget for the native fuzz targets in the `fuzz` job.
FUZZTIME ?= 30s

.PHONY: build vet test check race bench-smoke bench-micro lint-docs coverage fuzz scenario-smoke scenario-faults slo-check overhead-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

# The viewmap linker tests candidate pairs across a worker pool, the
# LOS index builds its grid lazily under concurrent queries, the
# server's sharded store takes concurrent ingest against concurrent
# investigations, and the evidence board takes concurrent deliveries
# and payouts (the server package includes the e2e evidence flow, the
# sim package the concurrent delivery benchmark); keep them all
# race-clean. The attack package and the online attack-serving
# campaigns (concurrent double-spend and payout races through the
# live HTTP path) ride in the same job, as does the continuous
# workload, whose WAL group commit, snapshotter, and evictor run
# against concurrent ingest and investigations. The saturation smoke
# adds concurrent batch uploaders hammering the burst pipeline's ring
# handoff and group commit. The scenario engine joins with concurrent
# uploaders retrying through the admission gates, a concurrent prober,
# and the fsync-stall hook firing under the WAL's group commit. The
# observability histograms take concurrent recorders against snapshot
# readers on sharded atomics. The warm-vs-cold flood equivalence test
# races the streaming watch notifications and the verdict cache against
# interleaved online-attack ingest (the server package's watch e2e and
# the core equivalence property already ride in the fully raced line
# above). The fault families add a crash-and-recover reopen racing
# in-flight uploaders, a partition mask flipped on the serving path,
# and the retention evictor draining under cold probes.
race:
	$(GO) test -race ./internal/core/... ./internal/geo/... ./internal/obs/... ./internal/server/... ./internal/evidence/... ./internal/attack/...
	$(GO) test -race -short -run 'TestEvidencePipelineSmall|TestAttackServingCampaigns|TestContinuousSmall|TestSaturationSmall|TestScenarioQuick|TestFaultFamilies|TestOnlineFloodWarmColdEquivalence|TestReverifyBenchmarkSmoke' ./internal/sim/

# Documentation hygiene: formatting, vet, complete doc comments on the
# exported surface of the service-facing packages, resolvable relative
# links in every Markdown file.
lint-docs:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/repolint

# One-iteration pass over the figure-level benchmark suite: catches
# regressions that only surface at experiment scale without paying for a
# full benchmark run. The following lines smoke the evidence pipeline
# and the online attack campaigns through the viewmap-bench binary
# itself (quick scale, one shot; attack-serving fails hard on any
# online/offline divergence or accepted fake). The reverify shot runs
# the post-flood re-verification comparison, which hard-fails if the
# warm-started TrustRank path ever answers differently from the cold
# recompute. The ingest-saturation
# shot drives the burst pipeline through the real batch endpoint,
# cross-checks the resulting viewmap against the offline builder, and
# rewrites BENCH_ingest.json — the committed baseline; diff it against
# the checkout to see how the current machine compares.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .
	$(GO) run ./cmd/viewmap-bench -run evidence -scale quick
	$(GO) run ./cmd/viewmap-bench -run attack-serving -scale quick
	$(GO) run ./cmd/viewmap-bench -run continuous -scale quick
	$(GO) run ./cmd/viewmap-bench -run reverify -scale quick
	$(GO) run ./cmd/viewmap-bench -run ingest-saturation -scale quick -json BENCH_ingest.json

# One quick-scale scenario-engine run through the bench binary: two
# cities, fleet churn, a mid-run WAL fsync stall with a duplicate
# saturation storm against a deliberately tight ingest gate, an
# incident-driven evidence spike, and a final-minute evidence-board
# partition. The run hard-fails on acked loss, on any probe diverging
# from the unfaulted baseline, or on a shed investigation, and writes
# the machine-readable SLO report (per-endpoint p50/p99, shed counts)
# to BENCH_scenario.json — CI uploads it as an artifact.
scenario-smoke:
	$(GO) run ./cmd/viewmap-bench -run scenario -scale quick -json BENCH_scenario.json

# The four fault families in isolation: crash-and-recover mid-minute
# (a parked WAL batch must replay), per-city clock skew against the
# server's wall-clock admission window, asymmetric per-endpoint-class
# partitions with a post-heal watch resume, and a 62-minute retention
# horizon probing evicted minutes while a storm lands on hot ones.
# Every family cross-checks bit-for-bit against an unfaulted baseline
# and hard-fails if its fault stops engaging. The same runs ride
# `scenario` (and therefore slo-check) as the report's "families"
# array; this target is the fast standalone drill.
scenario-faults:
	$(GO) run ./cmd/viewmap-bench -run scenario-faults -scale quick

# Per-commit SLO regression gate: a fresh quick-scale scenario run is
# compared against the committed baseline BENCH_scenario.json. Each
# endpoint class's candidate p99 must stay within baseline x 3 + 50 ms
# (loose enough for CI machine noise, hard enough to catch an
# accidental lock or per-record fsync), the run must report zero acked
# loss, and it must carry no scenario-internal SLO violations. When a
# deliberate change moves the latency profile, regenerate the baseline
# with scenario-smoke and commit it. See docs/observability.md.
slo-check:
	$(GO) run ./cmd/viewmap-bench -run scenario -scale quick -json BENCH_scenario.candidate.json
	$(GO) run ./cmd/slocheck -baseline BENCH_scenario.json -candidate BENCH_scenario.candidate.json
	@rm -f BENCH_scenario.candidate.json

# Observability overhead budget: ingest saturation with the metrics
# registry on vs off, best-of-N; fails if instrumented throughput
# drops below 95% of the no-op baseline.
overhead-smoke:
	$(GO) run ./cmd/viewmap-bench -run metrics-overhead -scale quick

# Coverage gate: the full ./internal/... profile must not regress
# below the recorded baseline.
coverage:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' \
		|| { echo "coverage regressed below the recorded baseline"; exit 1; }

# Native fuzzing over the untrusted decoders: the anonymous VP wire
# format, the batched-upload framing, the state-restore sniffing, and
# the WAL replay path (framing scanner + every record-body decoder).
# Each target gets FUZZTIME of coverage-guided input generation on top
# of the checked-in seed corpus; -fuzzminimizetime keeps minimization
# of interesting inputs from eating the budget on small machines.
fuzz:
	$(GO) test -fuzz=FuzzProfileUnmarshal -fuzztime=$(FUZZTIME) -fuzzminimizetime=100x -run=NONE ./internal/vp/
	$(GO) test -fuzz=FuzzSplitBatch -fuzztime=$(FUZZTIME) -fuzzminimizetime=100x -run=NONE ./internal/vp/
	$(GO) test -fuzz=FuzzSystemLoadFrom -fuzztime=$(FUZZTIME) -fuzzminimizetime=100x -run=NONE ./internal/server/
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME) -fuzzminimizetime=100x -run=NONE ./internal/server/

# Hot-path micro-benchmarks with allocation reporting.
bench-micro:
	$(GO) test -run=NONE -bench='BenchmarkViewmapLink|BenchmarkViewmapBuild|BenchmarkTrustRank' -benchtime=10x ./internal/core/
	$(GO) test -run=NONE -bench='BenchmarkIndexedLOS' ./internal/geo/
