# Targets mirrored by .github/workflows/ci.yml.

GO ?= go

.PHONY: build vet test check race bench-smoke bench-micro lint-docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

# The viewmap linker tests candidate pairs across a worker pool, the
# LOS index builds its grid lazily under concurrent queries, and the
# server's sharded store takes concurrent ingest against concurrent
# investigations; keep all three race-clean.
race:
	$(GO) test -race ./internal/core/... ./internal/geo/... ./internal/server/...

# Documentation hygiene: formatting, vet, complete doc comments on the
# exported surface of the service-facing packages, resolvable relative
# links in every Markdown file.
lint-docs:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/repolint

# One-iteration pass over the figure-level benchmark suite: catches
# regressions that only surface at experiment scale without paying for a
# full benchmark run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# Hot-path micro-benchmarks with allocation reporting.
bench-micro:
	$(GO) test -run=NONE -bench='BenchmarkViewmapLink|BenchmarkViewmapBuild|BenchmarkTrustRank' -benchtime=10x ./internal/core/
	$(GO) test -run=NONE -bench='BenchmarkIndexedLOS' ./internal/geo/
