# Targets mirrored by .github/workflows/ci.yml.

GO ?= go

.PHONY: build vet test check race bench-smoke bench-micro lint-docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

check: build vet test

# The viewmap linker tests candidate pairs across a worker pool, the
# LOS index builds its grid lazily under concurrent queries, the
# server's sharded store takes concurrent ingest against concurrent
# investigations, and the evidence board takes concurrent deliveries
# and payouts (the server package includes the e2e evidence flow, the
# sim package the concurrent delivery benchmark); keep them all
# race-clean.
race:
	$(GO) test -race ./internal/core/... ./internal/geo/... ./internal/server/... ./internal/evidence/...
	$(GO) test -race -run TestEvidencePipelineSmall ./internal/sim/

# Documentation hygiene: formatting, vet, complete doc comments on the
# exported surface of the service-facing packages, resolvable relative
# links in every Markdown file.
lint-docs:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/repolint

# One-iteration pass over the figure-level benchmark suite: catches
# regressions that only surface at experiment scale without paying for a
# full benchmark run. The second line smokes the evidence pipeline
# through the viewmap-bench binary itself (quick scale, one run).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x .
	$(GO) run ./cmd/viewmap-bench -run evidence -scale quick

# Hot-path micro-benchmarks with allocation reporting.
bench-micro:
	$(GO) test -run=NONE -bench='BenchmarkViewmapLink|BenchmarkViewmapBuild|BenchmarkTrustRank' -benchtime=10x ./internal/core/
	$(GO) test -run=NONE -bench='BenchmarkIndexedLOS' ./internal/geo/
