// Privacy tracking: what the VP database reveals about drivers, with
// and without guard VPs.
//
// The system (or anyone who obtains the VP database) plays the
// Section 6.2.2 adversary: starting from perfect knowledge of a
// target's first VP, it links VPs minute over minute by spatial
// continuity. Guard VPs — plausible fabricated trajectories that
// branch off at every encounter — make the belief diverge; this
// example prints the tracker's per-minute entropy and success with
// and without them.
//
// Run with: go run ./examples/privacy-tracking
package main

import (
	"fmt"
	"log"

	"viewmap/internal/sim"
	"viewmap/internal/tracker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("simulating 12 minutes of 100 vehicles on a 4x4 km grid...")
	run, err := sim.NewCityRun(sim.CityConfig{
		Vehicles: 100, Minutes: 12, MixSpeeds: true, Seed: 99,
	})
	if err != nil {
		return err
	}

	guarded, err := run.TrackingDataset(true)
	if err != nil {
		return err
	}
	bare, err := run.TrackingDataset(false)
	if err != nil {
		return err
	}

	entG, sucG, err := guarded.AverageOverTargets(tracker.Config{})
	if err != nil {
		return err
	}
	entB, sucB, err := bare.AverageOverTargets(tracker.Config{})
	if err != nil {
		return err
	}

	fmt.Println("\n            with guard VPs        raw VP database")
	fmt.Println("minute   entropy   success      entropy   success")
	for m := range sucG {
		fmt.Printf("  %2d     %5.2f b   %6.3f       %5.2f b   %6.3f\n",
			m, entG[m], sucG[m], entB[m], sucB[m])
	}
	last := len(sucG) - 1
	fmt.Printf("\nafter %d minutes the tracker still follows %.0f%% of drivers in the raw\n",
		last, sucB[last]*100)
	fmt.Printf("database, but only %.1f%% once guard VPs obfuscate the trajectories —\n", sucG[last]*100)
	fmt.Println("the path-confusion effect of Section 5.1.2 / Figs. 10-11.")
	return nil
}
