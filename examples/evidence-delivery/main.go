// Evidence delivery: the full sharing lifecycle of Sections 5.1–5.3
// across the HTTP API — a verified investigation opens a solicitation,
// an anonymous owner proves ownership and delivers the minute's video,
// the VD hash cascade accepts honest bytes and rejects a tampered
// copy, the payout mints untraceable cash (with a double spend
// bouncing off the durable ledger), and the investigator receives only
// the plate-redacted copy.
//
// Run with: go run ./examples/evidence-delivery
package main

import (
	"fmt"
	"image"
	"log"
	"net/http/httptest"

	"viewmap/internal/blur"
	"viewmap/internal/client"
	"viewmap/internal/evidence"
	"viewmap/internal/geo"
	"viewmap/internal/server"
	"viewmap/internal/vd"
)

const (
	frameW = 160
	frameH = 90
)

var plate = image.Rect(55, 40, 105, 56)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := server.NewSystem(server.Config{
		AuthorityToken: "tok", BankBits: 1024,
		Evidence: evidence.Config{FrameWidth: frameW, FrameHeight: frameH},
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		return err
	}

	// A civilian dashcam and a police car drive side by side for one
	// minute, exchanging view digests. The civilian's camera renders
	// plate-bearing frames — one frame per recorded second.
	cars := make([]*client.Vehicle, 2)
	for i, name := range []string{"owner", "police"} {
		v, err := client.NewVehicle(client.VehicleConfig{
			Name: name, Seed: int64(i + 1),
			Source: &blur.CameraSource{
				W: frameW, H: frameH, Seed: uint64(i + 1),
				Plates: []blur.Plate{{Rect: plate}},
			},
		})
		if err != nil {
			return err
		}
		if err := v.BeginMinute(0); err != nil {
			return err
		}
		cars[i] = v
	}
	for s := 1; s <= 60; s++ {
		vds := make([]vd.VD, 2)
		for i, v := range cars {
			d, err := v.Tick(geo.Pt(float64(s)*10+float64(i)*60, 0))
			if err != nil {
				return err
			}
			vds[i] = d
		}
		for i, v := range cars {
			if err := v.Hear(vds[1-i], int64(s)); err != nil {
				return err
			}
		}
	}
	for _, v := range cars {
		if _, _, err := v.EndMinute(nil); err != nil {
			return err
		}
	}
	owner, police := cars[0], cars[1]
	if _, err := api.UploadVPBatch(owner.PendingUploads()); err != nil {
		return err
	}
	for _, p := range police.PendingUploads() {
		if err := api.UploadTrustedVP("tok", p); err != nil {
			return err
		}
	}
	fmt.Println("1. VPs uploaded: owner anonymously, police as trusted")

	// The investigation verifies the viewmap and opens a solicitation
	// at 3 units per video.
	sol, err := api.OpenSolicitation("tok", 0, -50, 800, 50, 0, 3)
	if err != nil {
		return err
	}
	fmt.Printf("2. investigation verified %d members; solicitation lists %d VP(s) at %d units\n",
		sol.Members, sol.Listed, sol.Units)

	// The owner polls the board anonymously and recognizes its VP.
	board, err := api.EvidenceBoard()
	if err != nil {
		return err
	}
	ids := make([]vd.VPID, len(board))
	for i, o := range board {
		ids[i] = o.ID
	}
	matched := owner.MatchSolicitations(ids)
	var ownID vd.VPID
	var chunks [][]byte
	for id, c := range matched {
		ownID, chunks = id, c
	}
	q, _ := owner.Secret(ownID)

	// A tampered copy bounces off the VD cascade.
	tampered := make([][]byte, len(chunks))
	for i, c := range chunks {
		tampered[i] = append([]byte(nil), c...)
	}
	tampered[12][34] ^= 1
	if _, err := api.DeliverEvidence(ownID, q, tampered); err != nil {
		fmt.Printf("3. tampered delivery rejected: %v\n", err)
	} else {
		return fmt.Errorf("tampered delivery was accepted")
	}

	// The honest bytes are accepted.
	units, err := api.DeliverEvidence(ownID, q, chunks)
	if err != nil {
		return err
	}
	fmt.Printf("4. honest delivery accepted; %d units entitled\n", units)

	// Payout: blind-signed cash, verified against the public key.
	pub, err := api.BankKey()
	if err != nil {
		return err
	}
	cash, err := api.WithdrawPayout(ownID, q, units, pub)
	if err != nil {
		return err
	}
	fmt.Printf("5. withdrew %d blind-signed units; all verify: %v\n",
		len(cash), cash[0].Verify(pub))
	if err := api.RedeemPayout(cash[0]); err != nil {
		return err
	}
	if err := api.RedeemPayout(cash[0]); err != nil {
		fmt.Printf("6. double spend refused: %v\n", err)
	} else {
		return fmt.Errorf("double spend was accepted")
	}

	// The investigator fetches the footage — blurred.
	rel, err := api.FetchEvidence("tok", ownID)
	if err != nil {
		return err
	}
	frame := &image.Gray{Pix: rel.Chunks[0], Stride: frameW, Rect: image.Rect(0, 0, frameW, frameH)}
	fmt.Printf("7. released %d redacted frames (%d plate regions); plate contrast now %d\n",
		rel.RedactedFrames, rel.RedactedRegions, blur.Contrast(frame, plate.Inset(7)))

	st, err := api.StatsFull()
	if err != nil {
		return err
	}
	fmt.Printf("8. stats: %+v\n", st.Evidence)
	return nil
}
