// Quickstart: the smallest end-to-end ViewMap flow, entirely
// in-process.
//
// Three vehicles (two civilians and a police car) drive one minute in
// convoy, exchanging view digests over the simulated DSRC channel.
// Their view profiles are uploaded to an embedded system service; the
// authority investigates the minute, the system verifies the viewmap
// with TrustRank and solicits the videos of the verified VPs; a
// civilian uploads the matching video, which validates against the
// cascaded hashes in its VP.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"viewmap/internal/client"
	"viewmap/internal/geo"
	"viewmap/internal/roadnet"
	"viewmap/internal/server"
	"viewmap/internal/vd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- System service (normally cmd/viewmap-server) ---------------
	sys, err := server.NewSystem(server.Config{AuthorityToken: "demo-authority", BankBits: 1024})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		return err
	}
	fmt.Println("system service up at", ts.URL)

	// --- A small road network for guard-VP routes -------------------
	city, err := roadnet.BuildGrid(roadnet.GridConfig{Cols: 8, Rows: 4, Spacing: 200})
	if err != nil {
		return err
	}

	// --- One minute of convoy driving with VD exchange --------------
	names := []string{"civilian-A", "civilian-B", "police-1"}
	offsets := []float64{0, 50, 100}
	vehicles := make([]*client.Vehicle, len(names))
	for i, name := range names {
		v, err := client.NewVehicle(client.VehicleConfig{Name: name, BytesPerSecond: 5000, Seed: int64(i)})
		if err != nil {
			return err
		}
		if err := v.BeginMinute(0); err != nil {
			return err
		}
		vehicles[i] = v
	}
	for s := 1; s <= 60; s++ {
		digests := make([]vd.VD, len(vehicles))
		for i, v := range vehicles {
			d, err := v.Tick(geo.Pt(float64(s)*12+offsets[i], 0))
			if err != nil {
				return err
			}
			digests[i] = d
		}
		for i, v := range vehicles {
			for j, d := range digests {
				if i != j {
					if err := v.Hear(d, int64(s)); err != nil {
						return err
					}
				}
			}
		}
	}
	for i, v := range vehicles {
		net := city.Net
		if i == 2 {
			net = nil // the police car needs no guard VPs
		}
		actual, guards, err := v.EndMinute(net)
		if err != nil {
			return err
		}
		id := actual.ID()
		fmt.Printf("%s: built VP %x… with %d guard VP(s)\n", names[i], id[:4], len(guards))
	}

	// --- Anonymous uploads ------------------------------------------
	for i, v := range vehicles {
		for _, p := range v.PendingUploads() {
			if i == 2 {
				err = api.UploadTrustedVP("demo-authority", p)
			} else {
				err = api.UploadVP(p)
			}
			if err != nil {
				return err
			}
		}
	}
	vps, trusted, _, err := api.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("VP database: %d profiles (%d trusted)\n", vps, trusted)

	// --- Investigation ----------------------------------------------
	solicited, err := api.Investigate("demo-authority", 0, -50, 900, 50, 0)
	if err != nil {
		return err
	}
	fmt.Printf("investigation posted %d video solicitations (IDs only — site/time stay private)\n", solicited)

	// --- Vehicles answer solicitations -------------------------------
	ids, err := api.Solicitations()
	if err != nil {
		return err
	}
	for i, v := range vehicles[:2] {
		for id, chunks := range v.MatchSolicitations(ids) {
			if err := api.SubmitVideo(id, chunks); err != nil {
				return fmt.Errorf("%s video rejected: %w", names[i], err)
			}
			fmt.Printf("%s: uploaded video for VP %x… (validated against cascaded hashes)\n", names[i], id[:4])
		}
	}
	fmt.Printf("review queue holds %d validated videos; quickstart complete\n", sys.ReviewQueueLen())
	return nil
}
