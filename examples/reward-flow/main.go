// Reward flow: the full untraceable-cash protocol of Section 5.3 and
// Appendix A, across the HTTP API.
//
// A vehicle's video is solicited and reviewed; the owner proves
// ownership with the secret Q behind its VP identifier R = H(Q),
// withdraws blind-signed cash, and spends it. The example then shows
// the two guarantees: a double spend bounces, and the bank cannot link
// the cash it sees at redemption to the blinded messages it signed.
//
// Run with: go run ./examples/reward-flow
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"viewmap/internal/client"
	"viewmap/internal/geo"
	"viewmap/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := server.NewSystem(server.Config{AuthorityToken: "tok", BankBits: 1024})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.Handler(sys))
	defer ts.Close()
	api, err := client.NewAPI(ts.URL, ts.Client())
	if err != nil {
		return err
	}

	// A witness and a police car drive the same road, exchanging VDs,
	// so their VPs share a viewlink and the witness VP verifies.
	civilian, err := driveConvoy(api, sys)
	if err != nil {
		return err
	}

	// Investigation -> solicitation -> video upload -> review.
	if _, err := api.Investigate("tok", 0, -50, 900, 50, 0); err != nil {
		return err
	}
	ids, err := api.Solicitations()
	if err != nil {
		return err
	}
	matches := civilian.MatchSolicitations(ids)
	if len(matches) == 0 {
		return fmt.Errorf("witness VP was not solicited")
	}
	var rewardID [16]byte
	for id, chunks := range matches {
		if err := api.SubmitVideo(id, chunks); err != nil {
			return err
		}
		rewardID = id
		fmt.Printf("video for VP %x… uploaded and validated\n", id[:4])
	}
	if _, err := sys.Review("tok", func(*server.Submission) bool { return true }, 3); err != nil {
		return err
	}
	fmt.Println("human review approved the video; reward posted for 3 units")

	// The anonymous owner claims: prove ownership, blind, sign, unblind.
	q, ok := civilian.Secret(rewardID)
	if !ok {
		return fmt.Errorf("secret missing")
	}
	units, err := api.ClaimReward(rewardID, q)
	if err != nil {
		return err
	}
	pub, err := api.BankKey()
	if err != nil {
		return err
	}
	cash, err := api.WithdrawCash(rewardID, q, units, pub)
	if err != nil {
		return err
	}
	fmt.Printf("withdrew %d units of blind-signed virtual cash\n", len(cash))

	// Spend them; anyone can verify authenticity against the bank key.
	for i, c := range cash {
		if !c.Verify(pub) {
			return fmt.Errorf("unit %d failed public verification", i)
		}
		if err := api.Redeem(c); err != nil {
			return err
		}
	}
	fmt.Println("all units verified and redeemed")

	// Double spending is caught by the ledger...
	if err := api.Redeem(cash[0]); err != nil {
		fmt.Println("double spend rejected:", err)
	} else {
		return fmt.Errorf("double spend was not caught")
	}
	// ...and unlinkability holds: the messages the bank signed were
	// blinded, so the redeemed units cannot be matched to the video.
	fmt.Println("the bank signed only blinded messages: the cash it redeemed cannot be")
	fmt.Println("linked to the video, its VP, or the uploader (Chaum blind signatures)")
	return nil
}

// driveConvoy records one minute for a witness and a police car
// driving in convoy with full VD exchange, uploads both profiles, and
// returns the witness.
func driveConvoy(api *client.API, sys *server.System) (*client.Vehicle, error) {
	witness, err := client.NewVehicle(client.VehicleConfig{Name: "witness", BytesPerSecond: 4000})
	if err != nil {
		return nil, err
	}
	police, err := client.NewVehicle(client.VehicleConfig{Name: "police", BytesPerSecond: 4000})
	if err != nil {
		return nil, err
	}
	for _, v := range []*client.Vehicle{witness, police} {
		if err := v.BeginMinute(0); err != nil {
			return nil, err
		}
	}
	for s := 1; s <= 60; s++ {
		dw, err := witness.Tick(geo.Pt(float64(s)*12, 0))
		if err != nil {
			return nil, err
		}
		dp, err := police.Tick(geo.Pt(float64(s)*12+40, 0))
		if err != nil {
			return nil, err
		}
		if err := witness.Hear(dp, int64(s)); err != nil {
			return nil, err
		}
		if err := police.Hear(dw, int64(s)); err != nil {
			return nil, err
		}
	}
	for _, v := range []*client.Vehicle{witness, police} {
		if _, _, err := v.EndMinute(nil); err != nil {
			return nil, err
		}
	}
	for _, p := range witness.PendingUploads() {
		if err := api.UploadVP(p); err != nil {
			return nil, err
		}
	}
	for _, p := range police.PendingUploads() {
		if err := api.UploadTrustedVP(sys.AuthorityToken(), p); err != nil {
			return nil, err
		}
	}
	return witness, nil
}
