// Accident investigation under attack: the workload from the paper's
// introduction. A city of vehicles produces a minute of view profiles;
// an incident occurs at a known intersection; colluding attackers who
// were elsewhere in the city inject hundreds of fake VPs claiming the
// incident site, chasing the reward. The investigation builds the
// viewmap, runs TrustRank verification, and solicits only the VPs
// whose holders were really there.
//
// Run with: go run ./examples/accident-investigation
package main

import (
	"fmt"
	"log"

	"viewmap/internal/attack"
	"viewmap/internal/core"
	"viewmap/internal/geo"
	"viewmap/internal/sim"
	"viewmap/internal/vp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One simulated minute of 300 vehicles on a 4x4 km grid city.
	fmt.Println("simulating one minute of city traffic (300 vehicles)...")
	cityRun, err := sim.NewCityRun(sim.CityConfig{
		Vehicles: 300, Minutes: 1, MixSpeeds: true, Seed: 2024,
	})
	if err != nil {
		return err
	}
	minute, err := cityRun.ProfilesForMinute(0, true)
	if err != nil {
		return err
	}
	fmt.Printf("VP database for the minute: %d actual + %d guard VPs\n",
		len(minute.Profiles)-minute.Guards, minute.Guards)

	// A police car was on patrol near the city center; its VP is the
	// trust seed. The incident happened 1.5 km away.
	police := core.MarkTrustedNearest(minute.Profiles, geo.Pt(2000, 2000))
	fmt.Printf("trusted VP: police patrol, profile #%d\n", police)
	site := geo.RectAround(geo.Pt(3200, 3200), 250)
	fmt.Println("incident site: 500x500 m around (3200, 3200)")

	// Colluding attackers owned three VPs elsewhere in the city and
	// inject 900 fakes (300% of the honest population), all claiming
	// positions around the incident.
	var owned []*vp.Profile
	for _, p := range minute.Profiles {
		if p.Trusted || minute.Owner[p.ID()] < 0 {
			continue
		}
		if p.FinalLocation().Dist(site.Center()) > 1500 {
			owned = append(owned, p)
			if len(owned) == 3 {
				break
			}
		}
	}
	camp, err := attack.Launch(owned, attack.Config{
		Site: site, FakeCount: 900, Colluding: true, Minute: 0, Seed: 7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("attack: %d colluding attackers injected %d fake VPs claiming the site\n",
		len(owned), len(camp.Fakes))

	// The investigation: viewmap construction + Algorithm 1.
	all := append(append([]*vp.Profile{}, minute.Profiles...), camp.Fakes...)
	vm, err := core.Build(all, core.BuildConfig{Site: site, Minute: 0, RequirePlausible: true})
	if err != nil {
		return err
	}
	inSite := vm.InSite(site)
	verdict, err := vm.VerifySite(inSite, core.TrustRankConfig{})
	if err != nil {
		return err
	}

	var fakeInSite, legitInSite, fakeAccepted, legitAccepted int
	for _, i := range inSite {
		if camp.IsFake(vm.Profiles[i].ID()) {
			fakeInSite++
		} else {
			legitInSite++
		}
	}
	for _, i := range verdict.Legitimate {
		if camp.IsFake(vm.Profiles[i].ID()) {
			fakeAccepted++
		} else {
			legitAccepted++
		}
	}
	fmt.Printf("viewmap: %d members, %d viewlinks\n", vm.Len(), vm.NumEdges())
	fmt.Printf("claiming the site: %d legitimate VPs, %d fake VPs\n", legitInSite, fakeInSite)
	fmt.Printf("verification verdict: %d VPs solicited — %d legitimate, %d fake\n",
		len(verdict.Legitimate), legitAccepted, fakeAccepted)
	if fakeAccepted == 0 {
		fmt.Println("all fake VPs rejected; only witnesses who were really near the accident are asked for video")
	} else {
		fmt.Println("WARNING: some fakes slipped through (attackers were physically at the site)")
	}
	return nil
}
